package fs

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/lint/invariant"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// handlePropNotify receives the one-way commit notification (§2.3.6).
func (k *Kernel) handlePropNotify(from SiteID, p any) (any, error) {
	k.applyPropNotify(from, p.(*propNotify))
	return nil, nil
}

// applyPropNotify updates CSS knowledge and queues a propagation pull
// if this site stores (or should store) the file and its copy is out of
// date.
func (k *Kernel) applyPropNotify(_ SiteID, note *propNotify) {
	// A new committed version exists somewhere: drop any pages this
	// site's using-site cache holds for the file, so a stale read
	// through an already-open handle is impossible once the
	// notification arrives (§2.3.6).
	k.cache.invalidateFile(note.ID)
	// CSS bookkeeping: remember the most current version and storage
	// sites.
	if css, err := k.CSSOf(note.ID.FG); err == nil && css == k.site {
		k.mu.Lock()
		if e := k.cssState[note.ID]; e != nil {
			if note.VV.Compare(e.latestVV) == vclock.Dominates {
				e.latestVV = note.VV.Copy()
				e.sites = append([]SiteID(nil), note.Sites...)
			}
		}
		k.mu.Unlock()
	}

	c := k.container(note.ID.FG)
	if c == nil {
		return
	}
	stores := c.HasInode(note.ID.Inode)
	should := containsSite(note.Sites, k.site)
	if !stores && !should {
		return
	}
	if stores && !should && len(note.Sites) > 0 {
		// Replica retirement: discard our copy once the listed sites
		// all hold the new version.
		k.mu.Lock()
		if k.pendingProp[note.ID] == nil {
			k.pendingProp[note.ID] = &propTask{
				id: note.ID, vv: note.VV.Copy(), origin: note.Origin,
				drop: true, sites: append([]SiteID(nil), note.Sites...),
			}
			k.propQueue = append(k.propQueue, note.ID)
		}
		k.mu.Unlock()
		return
	}
	if stores {
		if ino, err := c.GetInode(note.ID.Inode); err == nil && ino.VV.DominatesOrEqual(note.VV) {
			return // already current (or the origin itself)
		}
	}

	k.mu.Lock()
	defer k.mu.Unlock()
	t := k.pendingProp[note.ID]
	if t == nil {
		t = &propTask{id: note.ID, vv: note.VV.Copy(), origin: note.Origin, pages: note.Pages}
		k.pendingProp[note.ID] = t
		k.propQueue = append(k.propQueue, note.ID)
		return
	}
	// Fold the new notification into the existing task.
	if t.drop {
		// The site was re-added to the storage list: turn the
		// retirement into an ordinary pull.
		t.drop = false
		t.sites = nil
		t.vv = note.VV.Copy()
		t.origin = note.Origin
		t.pages = nil
		return
	}
	if note.VV.Compare(t.vv) == vclock.Dominates {
		t.vv = note.VV.Copy()
		t.origin = note.Origin
	}
	if t.pages != nil {
		if note.Pages == nil {
			t.pages = nil // whole-file pull subsumes page list
		} else {
			t.pages = append(t.pages, note.Pages...)
		}
	}
}

// PendingPropagations reports how many files have queued pulls.
func (k *Kernel) PendingPropagations() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.pendingProp)
}

// DrainPropagation runs the kernel propagation process until the queue
// empties, pulling new versions from their origin sites. It returns
// the number of files brought up to date. Pulls that fail (origin
// unreachable, version raced ahead) stay queued for a later drain —
// the local copy remains a coherent, complete, albeit old version
// (§2.3.6).
func (k *Kernel) DrainPropagation() int {
	done := 0
	k.mu.Lock()
	budget := len(k.propQueue)
	k.mu.Unlock()
	// Items requeued during this drain (retries) wait for the next
	// drain, so one call always terminates.
	for i := 0; i < budget; i++ {
		k.mu.Lock()
		if len(k.propQueue) == 0 {
			k.mu.Unlock()
			return done
		}
		id := k.propQueue[0]
		k.propQueue = k.propQueue[1:]
		t := k.pendingProp[id]
		var snap *propTask
		if t != nil {
			// Pull from a snapshot: a late notification may fold newer
			// state into the queued task while the pull runs.
			snap = &propTask{
				id: t.id, vv: t.vv.Copy(), origin: t.origin,
				pages: append([]storage.PageNo(nil), t.pages...),
				drop:  t.drop, sites: append([]SiteID(nil), t.sites...),
			}
			if t.pages == nil {
				snap.pages = nil
			}
		}
		k.mu.Unlock()
		if snap == nil {
			continue
		}
		ok := k.pullFile(snap)
		k.mu.Lock()
		cur := k.pendingProp[id]
		if cur == t {
			evolved := !cur.vv.Equal(snap.vv) || cur.drop != snap.drop
			switch {
			case ok && !evolved:
				delete(k.pendingProp, id)
				done++
			case !ok && !k.inPartitionLocked(snap.origin):
				// Origin gone: keep the task but stop spinning; a merge
				// or fresh notification requeues it.
				delete(k.pendingProp, id)
				k.stalledProp = append(k.stalledProp, t)
			default:
				k.propQueue = append(k.propQueue, id)
			}
		}
		k.mu.Unlock()
	}
	return done
}

// DebugPendingPropagations describes the queued tasks (test diagnostics).
func (k *Kernel) DebugPendingPropagations() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	s := ""
	for id, t := range k.pendingProp {
		s += fmt.Sprintf("[site %d: %v vv=%v origin=%d drop=%v sites=%v] ", k.site, id, t.vv, t.origin, t.drop, t.sites)
	}
	return s
}

// StartPropagationDaemon launches the kernel propagation process
// (§2.3.6: "A queue of propagation requests is kept by the kernel at
// each site and a kernel process services the queue"), draining the
// queue every interval until StopPropagationDaemon or site crash.
// Deterministic tests and benchmarks use DrainPropagation directly
// instead.
func (k *Kernel) StartPropagationDaemon(interval time.Duration) {
	k.mu.Lock()
	if k.propStop != nil {
		k.mu.Unlock()
		return // already running
	}
	stop := make(chan struct{})
	k.propStop = stop
	k.mu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				k.DrainPropagation()
			}
		}
	}()
}

// StopPropagationDaemon halts the background propagation process.
func (k *Kernel) StopPropagationDaemon() {
	k.mu.Lock()
	stop := k.propStop
	k.propStop = nil
	k.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}

// RequeueStalledPropagations puts stalled pulls back on the queue
// (called after a partition merge makes origins reachable again).
func (k *Kernel) RequeueStalledPropagations() {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, t := range k.stalledProp {
		if k.pendingProp[t.id] == nil {
			k.pendingProp[t.id] = t
			k.propQueue = append(k.propQueue, t.id)
		}
	}
	k.stalledProp = nil
}

// pullFile propagates one file in from its origin: an internal open of
// the committed snapshot at the origin, standard reads of the missing
// pages, and a normal local commit — so a failure mid-pull leaves the
// old coherent copy (§2.3.6: "this propagation-in procedure uses the
// standard commit mechanism").
func (k *Kernel) pullFile(t *propTask) bool {
	c := k.container(t.id.FG)
	if c == nil {
		return true // nothing to store into; drop the task
	}
	if t.drop {
		return k.retireReplica(c, t)
	}

	resp, err := k.call(t.origin, mPullOpen, &pullOpenReq{ID: t.id})
	if err != nil {
		if errors.Is(err, storage.ErrNoInode) || errors.Is(err, ErrNotFound) {
			// The origin retired its replica before we pulled.
			// Re-resolve: find the current dominant copy, or drop the
			// task if the file is gone (or we are no longer a storage
			// site and never stored it).
			best, _, found := k.ProbeSummary(t.id)
			if !found {
				return true
			}
			if !containsSite(best.Sites, k.site) && !c.HasInode(t.id.Inode) {
				return true
			}
			if best.Site != t.origin && best.Site != k.site {
				// Point the live task (not just this attempt's snapshot)
				// at the surviving copy for the retry.
				old := t.origin
				t.origin = best.Site
				k.mu.Lock()
				if live := k.pendingProp[t.id]; live != nil && live.origin == old {
					live.origin = best.Site
				}
				k.mu.Unlock()
			}
		}
		return false
	}
	src := resp.(*pullOpenResp).Ino
	if src == nil {
		return false
	}

	// Never install a replica at a site outside the file's storage-site
	// list; if we hold a copy but fell off the list, retire instead.
	if !containsSite(src.Sites, k.site) {
		if !c.HasInode(t.id.Inode) {
			return true
		}
		t.drop = true
		t.sites = append([]SiteID(nil), src.Sites...)
		t.vv = src.VV.Copy()
		return k.retireReplica(c, t)
	}

	var local *storage.Inode
	if c.HasInode(t.id.Inode) {
		local, err = c.GetInode(t.id.Inode)
		if err != nil {
			return false
		}
		switch src.VV.Compare(local.VV) {
		case vclock.Equal, vclock.Dominated:
			return true // already current
		case vclock.Concurrent:
			// Divergent copies: this is a merge-time conflict; mark the
			// local copy so normal opens fail and leave resolution to
			// the reconciliation layer (§4.6).
			local.Conflict = true
			if err := c.CommitInode(local); err != nil {
				return false
			}
			return true
		}
	}

	// From here on the pull installs src over the local copy, so src
	// must strictly dominate it: propagation only ever moves a replica
	// forward in version-vector order (§4.2). The concurrent and
	// dominated cases were dispatched above.
	invariant.Assertf(local == nil || src.VV.Compare(local.VV) == vclock.Dominates,
		"fs: pull of %v would install %v over non-dominated local %v", t.id, src.VV, local)

	// Deleted versions propagate as tombstones; pages are released.
	if src.Deleted {
		tomb := src.Clone()
		tomb.Pages = nil
		tomb.Size = 0
		if err := c.CommitInode(tomb); err != nil {
			return false
		}
		return true
	}

	// Build the new local page table. When the notification named the
	// modified pages and we have a current base copy, only those pages
	// are pulled; otherwise the whole file is.
	pullAll := t.pages == nil || local == nil
	need := make(map[storage.PageNo]bool)
	if !pullAll {
		for _, pn := range t.pages {
			need[pn] = true
		}
	}
	newIno := src.Clone()
	newIno.Pages = make([]storage.PhysPage, len(src.Pages))
	var newPages []storage.PhysPage
	fail := func() bool {
		c.FreePages(newPages...)
		return false
	}
	for i := range src.Pages {
		pn := storage.PageNo(i)
		if src.Pages[i] == storage.PhysPageNil {
			newIno.Pages[i] = storage.PhysPageNil
			continue
		}
		if !pullAll && !need[pn] && local != nil && i < len(local.Pages) && local.Pages[i] != storage.PhysPageNil {
			// Unchanged page: keep the local physical page.
			newIno.Pages[i] = local.Pages[i]
			continue
		}
		// Read the immutable physical page from the origin snapshot;
		// "when each page arrives, the buffer that contains it is
		// renamed and sent out to secondary storage" — our rename is a
		// local WritePage.
		r, err := k.call(t.origin, mReadPhys, &readPhysReq{FG: t.id.FG, Phys: src.Pages[i]})
		if err != nil {
			return fail()
		}
		rp, ok := r.(*readResp)
		if !ok || rp.Data == nil {
			return fail()
		}
		pp, err := c.WritePage(rp.Data)
		if err != nil {
			return fail()
		}
		newPages = append(newPages, pp)
		newIno.Pages[i] = pp
	}
	if err := c.CommitInode(newIno); err != nil {
		return fail()
	}
	return true
}

// retireReplica drops this pack's copy of a file that moved away, but
// only after confirming every site in the new storage list holds the
// current version — the "delete" half of add-then-delete must never
// destroy the last current copy.
func (k *Kernel) retireReplica(c *storage.Container, t *propTask) bool {
	if !c.HasInode(t.id.Inode) {
		return true
	}
	// A file still being served from here must not vanish underneath
	// its opens; retry later.
	k.mu.Lock()
	_, serving := k.ssState[t.id]
	k.mu.Unlock()
	if serving {
		return false
	}
	for _, s := range t.sites {
		if s == k.site {
			return true // still listed after all: keep the copy
		}
		if !k.inPartition(s) {
			return false
		}
		resp, err := k.call(s, mGetVV, &getVVReq{ID: t.id})
		if err != nil {
			return false
		}
		r := resp.(*getVVResp)
		if !r.Has || !r.VV.DominatesOrEqual(t.vv) {
			return false // that site hasn't pulled the version yet
		}
	}
	c.DropInode(t.id.Inode)
	return true
}

// handlePullOpen returns a committed snapshot of the file for a
// propagation pull.
func (k *Kernel) handlePullOpen(_ SiteID, p any) (any, error) {
	req := p.(*pullOpenReq)
	c := k.container(req.ID.FG)
	if c == nil {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, req.ID)
	}
	ino, err := c.GetInode(req.ID.Inode)
	if err != nil {
		return nil, err
	}
	return &pullOpenResp{Ino: ino}, nil
}

// handleReadPhys reads one immutable physical page for a pull.
func (k *Kernel) handleReadPhys(_ SiteID, p any) (any, error) {
	req := p.(*readPhysReq)
	c := k.container(req.FG)
	if c == nil {
		return nil, fmt.Errorf("fs: site %d has no pack of filegroup %d", k.site, req.FG)
	}
	data, err := c.ReadPage(req.Phys)
	if err != nil {
		return nil, err
	}
	return &readResp{Data: data}, nil
}

// CollectGarbage reclaims delete tombstones whose deletion has been
// seen by every configured storage site of the file ("When all the
// storage sites have seen the delete, the inode can be reallocated by
// the site which has control of that inode" — §2.3.7). Returns the
// number of inodes reclaimed. Unreachable packs postpone collection.
func (k *Kernel) CollectGarbage() int {
	collected := 0
	for _, fg := range k.store.Filegroups() {
		c := k.container(fg)
		for _, num := range c.ListInodes() {
			if !c.Owns(num) {
				continue // only the controlling pack reallocates
			}
			ino, err := c.GetInode(num)
			if err != nil || !ino.Deleted {
				continue
			}
			id := storage.FileID{FG: fg, Inode: num}
			allSeen := true
			for _, s := range ino.Sites {
				if s == k.site {
					continue
				}
				if !k.inPartition(s) {
					allSeen = false
					break
				}
				resp, err := k.call(s, mGetVV, &getVVReq{ID: id})
				if err != nil {
					allSeen = false
					break
				}
				r := resp.(*getVVResp)
				if r.Has && !r.Deleted {
					// The pack missed the delete (it was partitioned
					// away when the tombstone was committed): nudge it
					// to pull the tombstone, collect next time.
					if ino.VV.Compare(r.VV) == vclock.Dominates {
						k.SchedulePullAt([]SiteID{s}, id, ino.VV, k.site)
					}
					allSeen = false
					break
				}
			}
			if allSeen {
				c.DropInode(num)
				collected++
			}
		}
	}
	return collected
}
