package fs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lint/invariant"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// defaultPropWorkers is the default size of the parallel pull-worker
// pool DrainPropagation runs (tunable via SetPropagationWorkers).
const defaultPropWorkers = 4

// handlePropNotify receives the one-way commit notification (§2.3.6).
func (k *Kernel) handlePropNotify(from SiteID, p any) (any, error) {
	k.applyPropNotify(from, p.(*propNotify))
	return nil, nil
}

// applyPropNotify updates CSS knowledge and queues a propagation pull
// if this site stores (or should store) the file and its copy is out of
// date.
func (k *Kernel) applyPropNotify(_ SiteID, note *propNotify) {
	// A new committed version exists somewhere: drop any pages this
	// site's using-site cache holds for the file, so a stale read
	// through an already-open handle is impossible once the
	// notification arrives (§2.3.6).
	k.cache.invalidateFile(note.ID)
	// A read delegation stamped with an older VV no longer serves the
	// current version: drop it, so the next open revalidates at the
	// CSS.
	k.dropLeaseIfStale(note.ID, note.VV)
	// CSS bookkeeping: remember the most current version and storage
	// sites.
	if css, err := k.CSSOf(note.ID.FG); err == nil && css == k.site {
		k.mu.Lock()
		if e := k.cssState[note.ID]; e != nil {
			if note.VV.Compare(e.latestVV) == vclock.Dominates {
				e.latestVV = note.VV.Copy()
				e.sites = append([]SiteID(nil), note.Sites...)
			}
			// Delegate records stamped with an older VV are *not*
			// pruned here: the CSS must stay conservative (a record
			// without a holder is healed by the next revoke round, but
			// a holder without a record would serve stale reads
			// unsupervised).
		}
		k.mu.Unlock()
	}

	c := k.container(note.ID.FG)
	if c == nil {
		return
	}
	stores := c.HasInode(note.ID.Inode)
	should := containsSite(note.Sites, k.site)
	if !stores && !should {
		return
	}
	if stores && !should && len(note.Sites) > 0 {
		// Replica retirement: discard our copy once the listed sites
		// all hold the new version.
		k.mu.Lock()
		if k.pendingProp[note.ID] == nil {
			k.pendingProp[note.ID] = &propTask{
				id: note.ID, vv: note.VV.Copy(), origin: note.Origin,
				drop: true, sites: append([]SiteID(nil), note.Sites...),
			}
			k.propQueue = append(k.propQueue, note.ID)
		}
		k.mu.Unlock()
		return
	}
	if stores {
		if ino, err := c.GetInode(note.ID.Inode); err == nil && ino.VV.DominatesOrEqual(note.VV) {
			return // already current (or the origin itself)
		}
	}

	k.mu.Lock()
	defer k.mu.Unlock()
	t := k.pendingProp[note.ID]
	if t == nil {
		t = &propTask{id: note.ID, vv: note.VV.Copy(), origin: note.Origin, pages: note.Pages}
		k.pendingProp[note.ID] = t
		k.propQueue = append(k.propQueue, note.ID)
		return
	}
	// Fold the new notification into the existing task.
	if t.drop {
		// The site was re-added to the storage list: turn the
		// retirement into an ordinary pull.
		t.drop = false
		t.sites = nil
		t.vv = note.VV.Copy()
		t.origin = note.Origin
		t.pages = nil
		return
	}
	if note.VV.Compare(t.vv) == vclock.Dominates {
		t.vv = note.VV.Copy()
		t.origin = note.Origin
	}
	if t.pages != nil {
		if note.Pages == nil {
			t.pages = nil // whole-file pull subsumes page list
		} else {
			t.pages = append(t.pages, note.Pages...)
		}
	}
}

// PendingPropagations reports how many files have queued pulls.
func (k *Kernel) PendingPropagations() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.pendingProp)
}

// DrainPropagation runs the kernel propagation process until the queue
// empties, pulling new versions from their origin sites. It returns
// the number of files brought up to date. Pulls that fail (origin
// unreachable, version raced ahead) stay queued for a later drain —
// the local copy remains a coherent, complete, albeit old version
// (§2.3.6).
//
// Pulls are serviced by a bounded worker pool, partitioned by
// (origin, filegroup): pulls from distinct origins overlap, while
// tasks sharing an origin and filegroup keep their queue order on one
// worker — so per-file snapshot/evolved-task bookkeeping never runs
// concurrently with itself. All workers join before the call returns,
// which is what keeps Settle/Quiesce deterministic.
func (k *Kernel) DrainPropagation() int {
	type job struct {
		id   storage.FileID
		live *propTask
		snap *propTask
	}
	// Dequeue up to the current queue length and snapshot each task: a
	// late notification may fold newer state into a queued task while
	// its pull runs, and items requeued during this drain (retries)
	// wait for the next drain, so one call always terminates.
	k.mu.Lock()
	workers := k.propWorkers
	var jobs []job
	for budget := len(k.propQueue); budget > 0 && len(k.propQueue) > 0; budget-- {
		id := k.propQueue[0]
		k.propQueue = k.propQueue[1:]
		t := k.pendingProp[id]
		if t == nil {
			continue
		}
		snap := &propTask{
			id: t.id, vv: t.vv.Copy(), origin: t.origin,
			pages: append([]storage.PageNo(nil), t.pages...),
			drop:  t.drop, sites: append([]SiteID(nil), t.sites...),
		}
		if t.pages == nil {
			snap.pages = nil
		}
		jobs = append(jobs, job{id: id, live: t, snap: snap})
	}
	k.mu.Unlock()
	if len(jobs) == 0 {
		return 0
	}

	// Partition into lanes by (origin, filegroup), preserving queue
	// order within each lane.
	type laneKey struct {
		origin SiteID
		fg     storage.FilegroupID
	}
	var order []laneKey
	lanes := make(map[laneKey][]job)
	for _, j := range jobs {
		lk := laneKey{origin: j.snap.origin, fg: j.id.FG}
		if _, ok := lanes[lk]; !ok {
			order = append(order, lk)
		}
		lanes[lk] = append(lanes[lk], j)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(order) {
		workers = len(order)
	}

	var done atomic.Int64
	runLane := func(lk laneKey) {
		for _, j := range lanes[lk] {
			ok := k.pullFile(j.snap)
			k.mu.Lock()
			cur := k.pendingProp[j.id]
			if cur == j.live {
				evolved := !cur.vv.Equal(j.snap.vv) || cur.drop != j.snap.drop
				switch {
				case ok && !evolved:
					delete(k.pendingProp, j.id)
					done.Add(1)
				case !ok && !k.inPartitionLocked(j.snap.origin):
					// Origin gone: keep the task but stop spinning; a merge
					// or fresh notification requeues it.
					delete(k.pendingProp, j.id)
					k.stalledProp = append(k.stalledProp, j.live)
				default:
					k.propQueue = append(k.propQueue, j.id)
				}
			}
			k.mu.Unlock()
		}
	}

	laneCh := make(chan laneKey)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lk := range laneCh {
				runLane(lk)
			}
		}()
	}
	for _, lk := range order {
		laneCh <- lk
	}
	close(laneCh)
	wg.Wait()
	return int(done.Load())
}

// DebugPendingPropagations describes the queued tasks (test diagnostics).
func (k *Kernel) DebugPendingPropagations() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	s := ""
	for id, t := range k.pendingProp {
		s += fmt.Sprintf("[site %d: %v vv=%v origin=%d drop=%v sites=%v] ", k.site, id, t.vv, t.origin, t.drop, t.sites)
	}
	return s
}

// StartPropagationDaemon launches the kernel propagation process
// (§2.3.6: "A queue of propagation requests is kept by the kernel at
// each site and a kernel process services the queue"), draining the
// queue every interval until StopPropagationDaemon or site crash.
// The interval is measured on the simulated clock, so a daemon never
// couples test or benchmark behavior to wall-clock scheduling; the
// clock keeps advancing during idle waits via Backoff's charged
// sleeps. Deterministic tests and benchmarks use DrainPropagation
// directly instead.
func (k *Kernel) StartPropagationDaemon(interval time.Duration) {
	k.mu.Lock()
	if k.propStop != nil {
		k.mu.Unlock()
		return // already running
	}
	stop := make(chan struct{})
	k.propStop = stop
	k.mu.Unlock()
	clk := k.node.Network().Clock()
	ivUs := int64(interval / time.Microsecond)
	if ivUs < 1 {
		ivUs = 1
	}
	k.propWG.Add(1)
	go func() {
		defer k.propWG.Done()
		for {
			next := clk.NowUs() + ivUs
			for attempt := 0; clk.NowUs() < next; attempt++ {
				select {
				case <-stop:
					return
				default:
				}
				clk.Backoff(attempt)
			}
			select {
			case <-stop:
				return
			default:
			}
			k.DrainPropagation()
		}
	}()
}

// StopPropagationDaemon halts the background propagation process and
// waits for it to exit: once this returns, no daemon-driven drain can
// still be mutating kernel state. The wait happens with k.mu released
// — a mid-drain daemon needs the mutex to finish.
func (k *Kernel) StopPropagationDaemon() {
	k.mu.Lock()
	stop := k.propStop
	k.propStop = nil
	k.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	k.propWG.Wait()
}

// RequeueStalledPropagations puts stalled pulls back on the queue
// (called after a partition merge makes origins reachable again).
func (k *Kernel) RequeueStalledPropagations() {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, t := range k.stalledProp {
		if k.pendingProp[t.id] == nil {
			k.pendingProp[t.id] = t
			k.propQueue = append(k.propQueue, t.id)
		} else {
			// A fresh task superseded the stalled one; its resume state
			// belongs to no pull anymore.
			k.freeStagedLocked(t)
		}
	}
	k.stalledProp = nil
}

// freeStagedLocked releases a task's staged resume pages. Caller holds
// k.mu. Staged pages are never referenced by a committed inode (the
// commit that would reference them clears the map first), so freeing
// is always safe.
func (k *Kernel) freeStagedLocked(t *propTask) {
	if t == nil || len(t.staged) == 0 {
		return
	}
	if c := k.container(t.id.FG); c != nil {
		for _, pp := range t.staged {
			c.FreePages(pp)
		}
	}
	t.staged, t.stagedVV = nil, nil
}

// dropStaged discards the live task's resume state for id; free also
// releases the pages (every path except the commit that just made them
// referenced).
func (k *Kernel) dropStaged(id storage.FileID, free bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	t := k.pendingProp[id]
	if t == nil {
		return
	}
	if free {
		k.freeStagedLocked(t)
	} else {
		t.staged, t.stagedVV = nil, nil
	}
}

// stagedFor returns a copy of the resume state usable for a pull of
// source version vv: origin-phys -> local-phys transfers parked by an
// earlier interrupted attempt. Staged pages for any other version are
// stale — origin physical page ids are only meaningful within one
// committed snapshot — and are freed on the spot.
func (k *Kernel) stagedFor(id storage.FileID, vv vclock.VV) map[storage.PhysPage]storage.PhysPage {
	k.mu.Lock()
	t := k.pendingProp[id]
	if t == nil || len(t.staged) == 0 {
		k.mu.Unlock()
		return nil
	}
	if !t.stagedVV.Equal(vv) {
		k.freeStagedLocked(t)
		k.mu.Unlock()
		return nil
	}
	out := make(map[storage.PhysPage]storage.PhysPage, len(t.staged))
	for from, to := range t.staged {
		out[from] = to
	}
	k.mu.Unlock()
	return out
}

// recordStaged parks one transferred page (origin phys from -> local
// shadow page to) in the live task so an interrupted pull resumes
// without re-sending it. If the task is gone (site crashed, task
// superseded) the page is freed immediately: nothing references it.
func (k *Kernel) recordStaged(id storage.FileID, vv vclock.VV, from, to storage.PhysPage, c *storage.Container) {
	k.mu.Lock()
	t := k.pendingProp[id]
	if t == nil {
		k.mu.Unlock()
		c.FreePages(to)
		return
	}
	if !t.stagedVV.Equal(vv) {
		k.freeStagedLocked(t)
	}
	if t.staged == nil {
		t.staged = make(map[storage.PhysPage]storage.PhysPage)
		t.stagedVV = vv.Copy()
	}
	t.staged[from] = to
	k.mu.Unlock()
}

// pullFile propagates one file in from its origin: an internal open of
// the committed snapshot at the origin, transfers of the missing
// pages, and a normal local commit — so a failure mid-pull leaves the
// old coherent copy (§2.3.6: "this propagation-in procedure uses the
// standard commit mechanism").
//
// With bulk pull enabled (the default), the open piggybacks the first
// window of data pages and the rest arrive PullWindow pages per
// fs.pullpages exchange, so a pull of K pages costs 1+⌈(K−W)/W⌉ round
// trips instead of 1+K. Transferred pages are staged on the live task
// as they land: an interrupted pull resumes without re-sending them.
func (k *Kernel) pullFile(t *propTask) bool {
	c := k.container(t.id.FG)
	if c == nil {
		return true // nothing to store into; drop the task
	}
	if t.drop {
		return k.retireReplica(c, t)
	}

	k.mu.Lock()
	bulk := !k.noBulkPull
	resuming := false
	if live := k.pendingProp[t.id]; live != nil && len(live.staged) > 0 {
		resuming = true
	}
	k.mu.Unlock()

	req := &pullOpenReq{ID: t.id}
	if bulk && !resuming {
		req.Window = PullWindow
		if t.pages != nil && c.HasInode(t.id.Inode) {
			req.Need = uniquePages(t.pages)
		}
	}
	resp, err := k.call(t.origin, mPullOpen, req)
	if err != nil {
		if errors.Is(err, storage.ErrNoInode) || errors.Is(err, ErrNotFound) {
			// The origin retired its replica before we pulled.
			// Re-resolve: find the current dominant copy, or drop the
			// task if the file is gone (or we are no longer a storage
			// site and never stored it).
			best, _, found := k.ProbeSummary(t.id)
			if !found {
				k.dropStaged(t.id, true)
				return true
			}
			if !containsSite(best.Sites, k.site) && !c.HasInode(t.id.Inode) {
				k.dropStaged(t.id, true)
				return true
			}
			if best.Site != t.origin && best.Site != k.site {
				// Point the live task (not just this attempt's snapshot)
				// at the surviving copy for the retry.
				old := t.origin
				t.origin = best.Site
				k.mu.Lock()
				if live := k.pendingProp[t.id]; live != nil && live.origin == old {
					live.origin = best.Site
					// Staged pages are keyed by the old origin's physical
					// page ids; they mean nothing at the new origin.
					k.freeStagedLocked(live)
				}
				k.mu.Unlock()
			}
		}
		return false
	}
	por := resp.(*pullOpenResp)
	src := por.Ino
	if src == nil {
		return false
	}

	// Never install a replica at a site outside the file's storage-site
	// list; if we hold a copy but fell off the list, retire instead.
	if !containsSite(src.Sites, k.site) {
		if !c.HasInode(t.id.Inode) {
			k.dropStaged(t.id, true)
			return true
		}
		t.drop = true
		t.sites = append([]SiteID(nil), src.Sites...)
		t.vv = src.VV.Copy()
		k.dropStaged(t.id, true)
		return k.retireReplica(c, t)
	}

	var local *storage.Inode
	if c.HasInode(t.id.Inode) {
		local, err = c.GetInode(t.id.Inode)
		if err != nil {
			return false
		}
		switch src.VV.Compare(local.VV) {
		case vclock.Equal, vclock.Dominated:
			k.dropStaged(t.id, true)
			return true // already current
		case vclock.Concurrent:
			// Divergent copies: this is a merge-time conflict; mark the
			// local copy so normal opens fail and leave resolution to
			// the reconciliation layer (§4.6).
			local.Conflict = true
			if err := c.CommitInode(local); err != nil {
				return false
			}
			k.dropStaged(t.id, true)
			return true
		}
	}

	// From here on the pull installs src over the local copy, so src
	// must strictly dominate it: propagation only ever moves a replica
	// forward in version-vector order (§4.2). The concurrent and
	// dominated cases were dispatched above.
	invariant.Assertf(local == nil || src.VV.Compare(local.VV) == vclock.Dominates,
		"fs: pull of %v would install %v over non-dominated local %v", t.id, src.VV, local)

	// Deleted versions propagate as tombstones; pages are released.
	if src.Deleted {
		tomb := src.Clone()
		tomb.Pages = nil
		tomb.Size = 0
		if err := c.CommitInode(tomb); err != nil {
			return false
		}
		k.dropStaged(t.id, true)
		return true
	}

	// Build the new local page table. When the notification named the
	// modified pages and we have a current base copy, only those pages
	// are pulled; otherwise the whole file is.
	pullAll := t.pages == nil || local == nil
	need := make(map[storage.PageNo]bool)
	if !pullAll {
		for _, pn := range t.pages {
			need[pn] = true
		}
	}
	// Resume state from earlier interrupted attempts at this exact
	// source version, plus the window piggybacked on the open.
	staged := k.stagedFor(t.id, src.VV)
	prefetched := make(map[storage.PhysPage][]byte, len(por.First))
	for i, pp := range por.FirstPhys {
		if i < len(por.First) {
			prefetched[pp] = por.First[i]
		}
	}

	newIno := src.Clone()
	newIno.Pages = make([]storage.PhysPage, len(src.Pages))
	// install renames one arrived page to local secondary storage
	// ("when each page arrives, the buffer that contains it is renamed
	// and sent out to secondary storage") and stages it for resume.
	install := func(i int, data []byte) bool {
		pp, err := c.WritePage(data)
		if err != nil {
			return false
		}
		newIno.Pages[i] = pp
		k.recordStaged(t.id, src.VV, src.Pages[i], pp, c)
		return true
	}
	var fetch []int // logical page indexes still to transfer
	for i := range src.Pages {
		pn := storage.PageNo(i)
		switch {
		case src.Pages[i] == storage.PhysPageNil:
			newIno.Pages[i] = storage.PhysPageNil
		case !pullAll && !need[pn] && local != nil && i < len(local.Pages) && local.Pages[i] != storage.PhysPageNil:
			// Unchanged page: keep the local physical page.
			newIno.Pages[i] = local.Pages[i]
		case staged[src.Pages[i]] != storage.PhysPageNil:
			// Already transferred by an interrupted attempt.
			newIno.Pages[i] = staged[src.Pages[i]]
		default:
			if data, ok := prefetched[src.Pages[i]]; ok {
				if !install(i, data) {
					return false
				}
				continue
			}
			fetch = append(fetch, i)
		}
	}

	if bulk {
		// Windowed transfer: up to PullWindow pages per exchange.
		for len(fetch) > 0 {
			w := len(fetch)
			if w > PullWindow {
				w = PullWindow
			}
			win := fetch[:w]
			fetch = fetch[w:]
			preq := &pullPagesReq{FG: t.id.FG, Phys: make([]storage.PhysPage, 0, w)}
			for _, i := range win {
				preq.Phys = append(preq.Phys, src.Pages[i])
			}
			r, err := k.call(t.origin, mPullPages, preq)
			if err != nil {
				return false
			}
			pr, ok := r.(*pullPagesResp)
			if !ok || len(pr.Pages) != len(win) {
				return false
			}
			for j, i := range win {
				if pr.Pages[j] == nil || !install(i, pr.Pages[j]) {
					return false
				}
			}
		}
	} else {
		for _, i := range fetch {
			// Read the immutable physical page from the origin snapshot,
			// one two-message exchange per page (the pre-bulk protocol,
			// kept pinnable behind SetBulkPull).
			r, err := k.call(t.origin, mReadPhys, &readPhysReq{FG: t.id.FG, Phys: src.Pages[i]})
			if err != nil {
				return false
			}
			rp, ok := r.(*readResp)
			if !ok || rp.Data == nil {
				return false
			}
			if !install(i, rp.Data) {
				return false
			}
		}
	}
	if err := c.CommitInode(newIno); err != nil {
		return false
	}
	// The commit made the staged pages referenced; clear the resume
	// state without freeing them.
	k.dropStaged(t.id, false)
	return true
}

// uniquePages returns the sorted distinct page numbers of pns.
func uniquePages(pns []storage.PageNo) []storage.PageNo {
	seen := make(map[storage.PageNo]bool, len(pns))
	out := make([]storage.PageNo, 0, len(pns))
	for _, pn := range pns {
		if !seen[pn] {
			seen[pn] = true
			out = append(out, pn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// retireReplica drops this pack's copy of a file that moved away, but
// only after confirming every site in the new storage list holds the
// current version — the "delete" half of add-then-delete must never
// destroy the last current copy. The per-site version probes are
// independent reads, so they run concurrently.
func (k *Kernel) retireReplica(c *storage.Container, t *propTask) bool {
	if !c.HasInode(t.id.Inode) {
		return true
	}
	// A file still being served from here must not vanish underneath
	// its opens; retry later.
	k.mu.Lock()
	_, serving := k.ssState[t.id]
	k.mu.Unlock()
	if serving {
		return false
	}
	var remote []SiteID
	for _, s := range t.sites {
		if s == k.site {
			return true // still listed after all: keep the copy
		}
		if !k.inPartition(s) {
			return false
		}
		remote = append(remote, s)
	}
	var ok atomic.Bool
	ok.Store(true)
	var wg sync.WaitGroup
	for _, s := range remote {
		wg.Add(1)
		go func(s SiteID) {
			defer wg.Done()
			resp, err := k.call(s, mGetVV, &getVVReq{ID: t.id})
			if err != nil {
				ok.Store(false)
				return
			}
			r := resp.(*getVVResp)
			if !r.Has || !r.VV.DominatesOrEqual(t.vv) {
				ok.Store(false) // that site hasn't pulled the version yet
			}
		}(s)
	}
	wg.Wait()
	if !ok.Load() {
		return false
	}
	c.DropInode(t.id.Inode)
	return true
}

// handlePullOpen returns a committed snapshot of the file for a
// propagation pull, piggybacking the first window of data pages when
// the puller asked for one.
func (k *Kernel) handlePullOpen(_ SiteID, p any) (any, error) {
	req := p.(*pullOpenReq)
	c := k.container(req.ID.FG)
	if c == nil {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, req.ID)
	}
	ino, err := c.GetInode(req.ID.Inode)
	if err != nil {
		return nil, err
	}
	// Clone at the transport boundary: the response crosses the
	// in-process transport by pointer and pullers rewrite the page
	// table of the inode they receive. GetInode hands out a deep copy
	// today, but the aliasing guarantee belongs to this handler, not to
	// a storage-layer implementation detail.
	resp := &pullOpenResp{Ino: ino.Clone()}
	if req.Window > 0 && !ino.Deleted {
		w := req.Window
		if w > PullWindow {
			w = PullWindow
		}
		var need map[storage.PageNo]bool
		if req.Need != nil {
			need = make(map[storage.PageNo]bool, len(req.Need))
			for _, pn := range req.Need {
				need[pn] = true
			}
		}
		for i := range ino.Pages {
			if len(resp.First) == w {
				break
			}
			if ino.Pages[i] == storage.PhysPageNil {
				continue
			}
			if need != nil && !need[storage.PageNo(i)] {
				continue
			}
			data, err := c.ReadPageShared(ino.Pages[i])
			if err != nil {
				break // partial window is fine; the puller fetches the rest
			}
			resp.FirstPhys = append(resp.FirstPhys, ino.Pages[i])
			resp.First = append(resp.First, data)
		}
		if len(resp.First) > 0 {
			k.meter().AddPullWindow(len(resp.First))
		}
	}
	return resp, nil
}

// handleReadPhys reads one immutable physical page for a pull.
func (k *Kernel) handleReadPhys(_ SiteID, p any) (any, error) {
	req := p.(*readPhysReq)
	c := k.container(req.FG)
	if c == nil {
		return nil, fmt.Errorf("fs: site %d has no pack of filegroup %d", k.site, req.FG)
	}
	data, err := c.ReadPageShared(req.Phys)
	if err != nil {
		return nil, err
	}
	return &readResp{Data: data}, nil
}

// handlePullPages reads one window of immutable physical pages for a
// bulk pull. Shadow paging keeps the snapshot's pages immutable while
// any committed inode references them, so the window is torn-write-free
// without holding any lock across the reads.
func (k *Kernel) handlePullPages(_ SiteID, p any) (any, error) {
	req := p.(*pullPagesReq)
	if len(req.Phys) > PullWindow {
		return nil, fmt.Errorf("fs: pull window of %d pages exceeds limit %d", len(req.Phys), PullWindow)
	}
	c := k.container(req.FG)
	if c == nil {
		return nil, fmt.Errorf("fs: site %d has no pack of filegroup %d", k.site, req.FG)
	}
	resp := &pullPagesResp{Pages: make([][]byte, 0, len(req.Phys))}
	for _, pp := range req.Phys {
		data, err := c.ReadPageShared(pp)
		if err != nil {
			return nil, err
		}
		resp.Pages = append(resp.Pages, data)
	}
	k.meter().AddPullWindow(len(resp.Pages))
	return resp, nil
}

// CollectGarbage reclaims delete tombstones whose deletion has been
// seen by every configured storage site of the file ("When all the
// storage sites have seen the delete, the inode can be reallocated by
// the site which has control of that inode" — §2.3.7). Returns the
// number of inodes reclaimed. Unreachable packs postpone collection.
func (k *Kernel) CollectGarbage() int {
	collected := 0
	for _, fg := range k.store.Filegroups() {
		c := k.container(fg)
		for _, num := range c.ListInodes() {
			if !c.Owns(num) {
				continue // only the controlling pack reallocates
			}
			ino, err := c.GetInode(num)
			if err != nil || !ino.Deleted {
				continue
			}
			id := storage.FileID{FG: fg, Inode: num}
			allSeen := true
			for _, s := range ino.Sites {
				if s == k.site {
					continue
				}
				if !k.inPartition(s) {
					allSeen = false
					break
				}
				resp, err := k.call(s, mGetVV, &getVVReq{ID: id})
				if err != nil {
					allSeen = false
					break
				}
				r := resp.(*getVVResp)
				if r.Has && !r.Deleted {
					// The pack missed the delete (it was partitioned
					// away when the tombstone was committed): nudge it
					// to pull the tombstone, collect next time.
					if ino.VV.Compare(r.VV) == vclock.Dominates {
						k.SchedulePullAt([]SiteID{s}, id, ino.VV, k.site)
					}
					allSeen = false
					break
				}
			}
			if allSeen {
				c.DropInode(num)
				collected++
			}
		}
	}
	return collected
}
