package fs

// On-demand lock-table validation. The cleanup procedure of §5.6
// reclaims synchronization records when the partition changes, but a
// close whose messages are lost to the network (without any topology
// change) strands a writer record that no partition protocol will ever
// examine: the holder is still "up", so CleanupAfterPartitionChange
// keeps its lock forever and every later open for modification is
// refused. The validation here applies the paper's lock-table
// reconstruction idea at the moment it matters: when an open is
// refused because of a recorded writer, the CSS (or SS) interrogates
// the recorded holder; if the holder has no live — or in-flight —
// modify handle for the file, the record is stale and is reclaimed,
// revoking any serving state left at the storage site.

import (
	"repro/internal/storage"
	"repro/internal/vclock"
)

// handleProbeOpen answers a lock-table validation probe at the using
// site: does a live (or in-flight) modify handle for the file exist
// here? Stale handles do not count — their close sends no messages, so
// nothing will ever release a lock recorded for them.
func (k *Kernel) handleProbeOpen(_ SiteID, p any) (any, error) {
	req := p.(*probeOpenReq)
	k.mu.Lock()
	defer k.mu.Unlock()
	floor := 0
	if req.SelfProbe {
		floor = 1 // the probing open's own in-flight record
	}
	if k.inflightOpens[req.ID] > floor {
		return &probeOpenResp{Open: true}, nil
	}
	for f := range k.openFiles {
		if f.id == req.ID && f.mode == ModeModify && !f.closed && !f.stale {
			return &probeOpenResp{Open: true}, nil
		}
	}
	// A held writer lease is a live claim on the writer slot even with
	// no handle open: the legacy probe must not reclaim it (the lease
	// layer's own revocation callback is the way to take it back).
	if l := k.leases[req.ID]; l != nil && l.mode == ModeModify {
		return &probeOpenResp{Open: true}, nil
	}
	return &probeOpenResp{Open: false}, nil
}

// handleRevokeServe discards SS serving state for a writer whose
// handle the CSS has validated as gone.
func (k *Kernel) handleRevokeServe(_ SiteID, p any) (any, error) {
	req := p.(*revokeServeReq)
	k.revokeServeLocal(req.ID, req.US)
	return nil, nil
}

// revokeServeLocal reclaims local serving state held for a vanished
// writer: uncommitted shadow pages are freed and the writer slot
// cleared, exactly as handleClose would have done had the close
// arrived.
func (k *Kernel) revokeServeLocal(id storage.FileID, us SiteID) {
	k.mu.Lock()
	sv := k.ssState[id]
	var freed []storage.PhysPage
	if sv != nil && sv.writerUS == us {
		if sv.incore != nil {
			for _, pp := range sv.incore.Pages {
				if pp != storage.PhysPageNil && !sv.committedPages[pp] {
					freed = append(freed, pp)
				}
			}
		}
		sv.writerUS = vclock.NoSite
		sv.incore = nil
		sv.committedPages = nil
		sv.dirty = nil
		if len(sv.readers) == 0 {
			delete(k.ssState, id)
		}
	}
	k.mu.Unlock()
	if len(freed) > 0 {
		if c := k.container(id.FG); c != nil {
			c.FreePages(freed...)
		}
	}
}

// probeWriterOpen asks the recorded holder whether its modify handle
// still exists. An unreachable holder counts as still open: we cannot
// tell a lost close from a slow one, so the lock is kept and the
// partition protocol decides when the topology actually changes.
func (k *Kernel) probeWriterOpen(id storage.FileID, holder SiteID, selfProbe bool) bool {
	req := &probeOpenReq{ID: id, SelfProbe: selfProbe}
	if holder == k.site {
		resp, _ := k.handleProbeOpen(k.site, req)
		return resp.(*probeOpenResp).Open
	}
	resp, err := k.call(holder, mProbeOpen, req)
	if err != nil {
		return true
	}
	return resp.(*probeOpenResp).Open
}

// writerVanished validates a refused open at the CSS: true when the
// recorded writer's handle is gone, in which case any serving state at
// the recorded storage site has been revoked and the caller may
// reclaim the lock record.
func (k *Kernel) writerVanished(id storage.FileID, holder, ssHolder SiteID, selfProbe bool) bool {
	if k.probeWriterOpen(id, holder, selfProbe) {
		return false
	}
	if ssHolder != vclock.NoSite {
		if ssHolder == k.site {
			k.revokeServeLocal(id, holder)
		} else {
			// Best effort: if the revoke is lost too, the SS validates
			// the writer itself on the next open (setupServe).
			k.call(ssHolder, mRevokeServe, &revokeServeReq{ID: id, US: holder}) //locus:vet-allow uncheckedcall best-effort revoke: an unreachable SS is reclaimed by the partition protocol
		}
	}
	return true
}
