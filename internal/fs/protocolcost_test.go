package fs_test

import (
	"bytes"
	"testing"

	"repro/internal/fs"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// TestProtocolMessageCostsPinned pins the paper's per-operation wire
// message counts (§2.3.3–§2.3.6: general open = 4, read = 2, write = 1,
// commit = 2 + one notification per other replica plus the CSS,
// close = 4) via Snapshot.Sub, so transport-layer refactors provably
// change no wire traffic.
func TestProtocolMessageCostsPinned(t *testing.T) {
	pinProtocolCosts(t, false, nil)
}

// TestProtocolCostsUnchangedWithFaultPlaneArmed re-pins the same exact
// counts with the fault plane constructed but disabled (zero rates, no
// scripted points): arming the adversary, the at-most-once sequence
// numbers on every mutating call, and the callee-side dedup tables must
// add zero wire messages and zero fault events.
func TestProtocolCostsUnchangedWithFaultPlaneArmed(t *testing.T) {
	pinProtocolCosts(t, true, nil)
}

// TestProtocolCostsUnchangedAfterLeaseCycle re-pins the exact legacy
// counts on a cluster that ran a full lease cycle first — delegations
// granted and revoked, a writer lease taken and released — and was then
// switched back with SetLeases(false). The ablation must reproduce the
// paper's protocol byte for byte: no lease state may linger and change
// a single wire message.
func TestProtocolCostsUnchangedAfterLeaseCycle(t *testing.T) {
	pinProtocolCosts(t, false, func(c *testCluster) {
		for _, k := range c.kernels {
			k.SetLeases(true)
		}
		writeFile(t, c.kernels[1], "/warm", bytes.Repeat([]byte{'w'}, storage.PageSize))
		c.settle(t)
		r, err := c.kernels[2].Resolve(cred(), "/warm")
		if err != nil {
			t.Fatal(err)
		}
		// Read delegation at site 2: grant, local reopen, local closes.
		for i := 0; i < 2; i++ {
			f, err := c.kernels[2].OpenID(r.ID, fs.ModeRead)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
		// Writer lease at site 3: recalls the delegation, then a leased
		// (wire-free) close.
		w, err := c.kernels[3].OpenID(r.ID, fs.ModeModify)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.WriteAt(bytes.Repeat([]byte{'x'}, storage.PageSize), 0); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// Ablation: drop back to the paper's protocol. Disabling releases
		// every held lease (the writer lease performs its deferred close).
		for _, k := range c.kernels {
			k.SetLeases(false)
		}
		c.settle(t)
		for site, k := range c.kernels {
			if n := len(k.Leases()); n != 0 {
				t.Fatalf("site %d still holds %d lease(s) after SetLeases(false)", site, n)
			}
			if n := len(k.Delegates()); n != 0 {
				t.Fatalf("site %d still records %d delegate file(s) after SetLeases(false)", site, n)
			}
		}
	})
}

func pinProtocolCosts(t *testing.T, armFaultPlane bool, prepare func(c *testCluster)) {
	c := newCluster(t, 4) // CSS = site 1
	if armFaultPlane {
		c.net.EnableFaults(netsim.FaultConfig{Seed: 1})
	}
	if prepare != nil {
		prepare(c)
	}
	writeFile(t, c.kernels[3], "/pin", bytes.Repeat([]byte{'p'}, 2*storage.PageSize))
	// Store the file at sites 3 and 4 only: the CSS (1) holds no copy
	// and US = 2 is purely a using site.
	if err := c.kernels[3].SetReplication(cred(), "/pin", []fs.SiteID{3, 4}); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	r, err := c.kernels[2].Resolve(cred(), "/pin")
	if err != nil {
		t.Fatal(err)
	}

	delta := func(op func()) netsim.Snapshot {
		before := c.net.Stats()
		op()
		c.net.Quiesce() // casts are in flight only briefly; settle them
		return c.net.Stats().Sub(before)
	}
	check := func(what string, d netsim.Snapshot, msgs int64, byMeth map[string]int64) {
		t.Helper()
		if d.Msgs != msgs {
			t.Errorf("%s: %d wire messages, want %d (%v)", what, d.Msgs, msgs, d.ByMethod)
		}
		for m, n := range byMeth {
			if d.ByMethod[m] != n {
				t.Errorf("%s: %d %s messages, want %d", what, d.ByMethod[m], m, n)
			}
		}
		if d.MsgsDropped != 0 || d.MsgsDuped != 0 || d.MsgsDelayed != 0 || d.CircuitResets != 0 {
			t.Errorf("%s: fault counters moved on a fault-free network: dropped=%d duped=%d delayed=%d resets=%d",
				what, d.MsgsDropped, d.MsgsDuped, d.MsgsDelayed, d.CircuitResets)
		}
	}

	// General open (US=2, CSS=1, SS=3): request to CSS + CSS polls SS.
	var f *fs.File
	d := delta(func() {
		f, err = c.kernels[2].OpenID(r.ID, fs.ModeRead)
		if err != nil {
			t.Fatal(err)
		}
	})
	check("open(read)", d, 4, map[string]int64{"fs.open": 2, "fs.ssopen": 2})

	// Network read: exactly the two-message exchange of §2.3.3 (cold
	// cache, no readahead).
	buf := make([]byte, storage.PageSize)
	d = delta(func() {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	})
	check("read page", d, 2, map[string]int64{"fs.read": 2})

	// Close: the 4-message protocol (US→SS, SS→CSS).
	d = delta(func() {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	})
	check("close(read)", d, 4, map[string]int64{"fs.close": 2, "fs.ssclose": 2})

	// Open for modify, then a whole-page write: one one-way message.
	w, err := c.kernels[2].OpenID(r.ID, fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	d = delta(func() {
		if _, err := w.WriteAt(bytes.Repeat([]byte{'q'}, storage.PageSize), 0); err != nil {
			t.Fatal(err)
		}
	})
	check("write page", d, 1, map[string]int64{"fs.write": 1})

	// Commit: the 2-message commit exchange plus one one-way
	// notification to the other replica (site 4) and one to the CSS
	// (site 1) — "1 per replica" in the paper's accounting.
	d = delta(func() {
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	check("commit", d, 4, map[string]int64{"fs.commit": 2, "fs.propnotify": 2})

	// Close of the committed writer: 4 messages again.
	d = delta(func() {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	})
	check("close(modify)", d, 4, map[string]int64{"fs.close": 2, "fs.ssclose": 2})
}

// TestPropagationCostsPinned pins the wire cost of bringing a replica
// current (§2.3.6 pull propagation). With bulk pull on, the open
// piggybacks the first window, so a pull of P modified pages costs
// 1+⌈max(0,P−W)/W⌉ request/response pairs — at or under the 1+⌈P/W⌉
// bound of the windowed protocol. With the SetBulkPull ablation off it
// costs the legacy 1+P pairs, so the old per-page accounting stays
// pinnable.
func TestPropagationCostsPinned(t *testing.T) {
	const W = fs.PullWindow // 8
	c := newCluster(t, 2)
	writeFile(t, c.kernels[1], "/pin", bytes.Repeat([]byte{'a'}, 12*storage.PageSize))
	c.settle(t)
	r, err := c.kernels[1].Resolve(cred(), "/pin")
	if err != nil {
		t.Fatal(err)
	}

	// modify overwrites the first p pages at site 1 and commits.
	modify := func(p int, fill byte) {
		t.Helper()
		w, err := c.kernels[1].OpenID(r.ID, fs.ModeModify)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < p; i++ {
			if _, err := w.WriteAt(bytes.Repeat([]byte{fill}, storage.PageSize), int64(i)*storage.PageSize); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	pull := func() netsim.Snapshot {
		before := c.net.Stats()
		c.settle(t)
		return c.net.Stats().Sub(before)
	}
	check := func(what string, d netsim.Snapshot, msgs int64, byMeth map[string]int64, windows, pages int64) {
		t.Helper()
		if d.Msgs != msgs {
			t.Errorf("%s: %d wire messages, want %d (%v)", what, d.Msgs, msgs, d.ByMethod)
		}
		for _, m := range []string{"fs.pullopen", "fs.pullpages", "fs.readphys"} {
			if d.ByMethod[m] != byMeth[m] {
				t.Errorf("%s: %d %s messages, want %d", what, d.ByMethod[m], m, byMeth[m])
			}
		}
		if d.PullWindowsSent != windows || d.PullPagesSent != pages {
			t.Errorf("%s: windows=%d pages=%d sent, want windows=%d pages=%d",
				what, d.PullWindowsSent, d.PullPagesSent, windows, pages)
		}
	}

	// P=10 > W: 1+⌈(10−8)/8⌉ = 2 pairs — the open (piggybacking the
	// first 8 of the 10 needed pages, not all 12 stored ones) plus one
	// fs.pullpages window with the remaining 2.
	modify(10, 'b')
	check("bulk pull P=10", pull(), 4,
		map[string]int64{"fs.pullopen": 2, "fs.pullpages": 2}, 2, 10)

	// P=3 ≤ W: the whole pull collapses into the single open exchange.
	modify(3, 'c')
	check("bulk pull P=3", pull(), 2,
		map[string]int64{"fs.pullopen": 2}, 1, 3)

	// Ablation: the legacy protocol pays 1+P pairs, one fs.readphys
	// exchange per modified page, and sends no bulk windows.
	c.kernels[2].SetBulkPull(false)
	modify(10, 'd')
	check("serial pull P=10", pull(), 22,
		map[string]int64{"fs.pullopen": 2, "fs.readphys": 20}, 0, 0)
	c.kernels[2].SetBulkPull(true)

	got := readFile(t, c.kernels[2], "/pin")
	want := append(bytes.Repeat([]byte{'d'}, 10*storage.PageSize), bytes.Repeat([]byte{'a'}, 2*storage.PageSize)...)
	if !bytes.Equal(got, want) {
		t.Fatal("replica content diverged across pull variants")
	}
}
