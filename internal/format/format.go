// Package format defines the on-disk serialization of the two system
// data types LOCUS understands well enough to merge automatically:
// naming-catalog directories (§4.4) and mailboxes (§4.5).
//
// Directories are sets of records mapping one pathname element to an
// inode number (§4.4: "A directory can be viewed as a set of records,
// each one containing the character string comprising one element in
// the path name of a file"). Because reconciliation must propagate
// deletes performed in another partition, removed entries are retained
// as tombstones carrying the version vector of the file at the time of
// the delete; rule (d) of the merge algorithm compares that vector with
// the file's current vector to decide whether the file was "modified
// since the delete".
//
// The encoding is a deterministic, self-contained binary format
// (length-prefixed records, entries sorted by name) so that directory
// pages flow through exactly the same page read/write protocols as
// ordinary file data.
package format

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/storage"
	"repro/internal/vclock"
)

// ErrCorrupt reports undecodable directory or mailbox content.
var ErrCorrupt = errors.New("format: corrupt serialized data")

const dirMagic = 0x4C44  // "LD": LOCUS directory
const mailMagic = 0x4C4D // "LM": LOCUS mailbox

// DirEntry is one directory record.
type DirEntry struct {
	// Name is the pathname component. Names are unique within a
	// directory (including tombstones).
	Name string
	// Inode is the file descriptor number within the directory's
	// filegroup.
	Inode storage.InodeNum
	// Deleted marks a tombstone: the name was removed, and the fact of
	// removal must survive for partition merge.
	Deleted bool
	// DelVV is, for a tombstone, the version vector of the file at the
	// time of the delete; the merge rules use it to detect "data has
	// been modified since the delete".
	DelVV vclock.VV
}

// Directory is decoded directory content.
type Directory struct {
	Entries []DirEntry // sorted by Name
}

// Lookup returns the live entry for name, if any.
func (d *Directory) Lookup(name string) (DirEntry, bool) {
	i := sort.Search(len(d.Entries), func(i int) bool { return d.Entries[i].Name >= name })
	if i < len(d.Entries) && d.Entries[i].Name == name && !d.Entries[i].Deleted {
		return d.Entries[i], true
	}
	return DirEntry{}, false
}

// LookupAny returns the entry for name including tombstones.
func (d *Directory) LookupAny(name string) (DirEntry, bool) {
	i := sort.Search(len(d.Entries), func(i int) bool { return d.Entries[i].Name >= name })
	if i < len(d.Entries) && d.Entries[i].Name == name {
		return d.Entries[i], true
	}
	return DirEntry{}, false
}

// Live returns the non-tombstone entries, sorted by name.
func (d *Directory) Live() []DirEntry {
	out := make([]DirEntry, 0, len(d.Entries))
	for _, e := range d.Entries {
		if !e.Deleted {
			out = append(out, e)
		}
	}
	return out
}

// Insert adds or replaces the entry for name. Inserting over a
// tombstone resurrects the name. Directory operations are atomic at
// the entry level (§2.3.4: "no system call does more than just enter,
// delete, or change an entry within a directory").
func (d *Directory) Insert(name string, ino storage.InodeNum) {
	d.put(DirEntry{Name: name, Inode: ino})
}

// Remove replaces the live entry for name with a tombstone recording
// the file's version vector at delete time. Removing a missing or
// already-deleted name reports false.
func (d *Directory) Remove(name string, fileVV vclock.VV) bool {
	i := sort.Search(len(d.Entries), func(i int) bool { return d.Entries[i].Name >= name })
	if i >= len(d.Entries) || d.Entries[i].Name != name || d.Entries[i].Deleted {
		return false
	}
	d.Entries[i].Deleted = true
	d.Entries[i].DelVV = fileVV.Copy()
	return true
}

func (d *Directory) put(e DirEntry) {
	i := sort.Search(len(d.Entries), func(i int) bool { return d.Entries[i].Name >= e.Name })
	if i < len(d.Entries) && d.Entries[i].Name == e.Name {
		d.Entries[i] = e
		return
	}
	d.Entries = append(d.Entries, DirEntry{})
	copy(d.Entries[i+1:], d.Entries[i:])
	d.Entries[i] = e
}

// PutRaw installs an entry verbatim (used by reconciliation to
// propagate tombstones between copies).
func (d *Directory) PutRaw(e DirEntry) { d.put(e) }

// Clone returns a copy that can be mutated through the Directory API
// without affecting d. The entry slice is copied; tombstone DelVV maps
// are shared, which is safe because no Directory method mutates a
// DelVV in place (Remove installs a fresh Copy, Insert and put replace
// whole entries).
func (d *Directory) Clone() *Directory {
	return &Directory{Entries: append([]DirEntry(nil), d.Entries...)}
}

func appendVV(b []byte, vv vclock.VV) []byte {
	sites := vv.Sites()
	b = binary.AppendUvarint(b, uint64(len(sites)))
	for _, s := range sites {
		b = binary.AppendUvarint(b, uint64(s))
		b = binary.AppendUvarint(b, vv.Get(s))
	}
	return b
}

func readVV(b []byte) (vclock.VV, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, nil, ErrCorrupt
	}
	b = b[k:]
	vv := vclock.New()
	for i := uint64(0); i < n; i++ {
		s, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, nil, ErrCorrupt
		}
		b = b[k:]
		c, k2 := binary.Uvarint(b)
		if k2 <= 0 {
			return nil, nil, ErrCorrupt
		}
		b = b[k2:]
		vv[vclock.SiteID(s)] = c //locus:vet-allow vvmutation wire decode builds the vector entry by entry
	}
	return vv, b, nil
}

// EncodeDir serializes a directory.
func EncodeDir(d *Directory) []byte {
	b := binary.AppendUvarint(nil, dirMagic)
	b = binary.AppendUvarint(b, uint64(len(d.Entries)))
	for _, e := range d.Entries {
		b = binary.AppendUvarint(b, uint64(len(e.Name)))
		b = append(b, e.Name...)
		b = binary.AppendUvarint(b, uint64(e.Inode))
		if e.Deleted {
			b = append(b, 1)
			b = appendVV(b, e.DelVV)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// DecodeDir parses serialized directory content. Empty input decodes
// as an empty directory (a freshly created directory has no pages).
func DecodeDir(b []byte) (*Directory, error) {
	d := &Directory{}
	if len(b) == 0 {
		return d, nil
	}
	magic, k := binary.Uvarint(b)
	if k <= 0 || magic != dirMagic {
		return nil, fmt.Errorf("%w: bad directory magic", ErrCorrupt)
	}
	b = b[k:]
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, ErrCorrupt
	}
	b = b[k:]
	for i := uint64(0); i < n; i++ {
		nameLen, k := binary.Uvarint(b)
		if k <= 0 || uint64(len(b[k:])) < nameLen {
			return nil, ErrCorrupt
		}
		b = b[k:]
		name := string(b[:nameLen])
		b = b[nameLen:]
		ino, k := binary.Uvarint(b)
		if k <= 0 || len(b[k:]) < 1 {
			return nil, ErrCorrupt
		}
		b = b[k:]
		del := b[0] == 1
		b = b[1:]
		e := DirEntry{Name: name, Inode: storage.InodeNum(ino), Deleted: del}
		if del {
			var err error
			e.DelVV, b, err = readVV(b)
			if err != nil {
				return nil, err
			}
		}
		d.Entries = append(d.Entries, e)
	}
	sort.Slice(d.Entries, func(i, j int) bool { return d.Entries[i].Name < d.Entries[j].Name })
	return d, nil
}

// Message is one mail message in the default "multiple messages in a
// single file" mailbox format.
type Message struct {
	// ID is a globally unique message id (origin site + sequence),
	// which is what makes mailbox merge free of name conflicts (§4.5:
	// "it is easy to arrange for no name conflicts").
	ID string
	// From names the sender ("locus-recovery" for conflict mail).
	From string
	// Body is the message text.
	Body string
	// Deleted marks a tombstone so deletes propagate at merge.
	Deleted bool
}

// Mailbox is decoded mailbox content.
type Mailbox struct {
	Messages []Message // sorted by ID
}

// Live returns non-deleted messages, sorted by ID.
func (m *Mailbox) Live() []Message {
	out := make([]Message, 0, len(m.Messages))
	for _, msg := range m.Messages {
		if !msg.Deleted {
			out = append(out, msg)
		}
	}
	return out
}

// Deliver inserts a message (idempotent by ID: redelivery of the same
// ID is a no-op, and delivery over a tombstone stays deleted).
func (m *Mailbox) Deliver(msg Message) {
	i := sort.Search(len(m.Messages), func(i int) bool { return m.Messages[i].ID >= msg.ID })
	if i < len(m.Messages) && m.Messages[i].ID == msg.ID {
		return
	}
	m.Messages = append(m.Messages, Message{})
	copy(m.Messages[i+1:], m.Messages[i:])
	m.Messages[i] = msg
}

// Delete tombstones a message by ID; reports whether it was live.
func (m *Mailbox) Delete(id string) bool {
	i := sort.Search(len(m.Messages), func(i int) bool { return m.Messages[i].ID >= id })
	if i >= len(m.Messages) || m.Messages[i].ID != id || m.Messages[i].Deleted {
		return false
	}
	m.Messages[i].Deleted = true
	m.Messages[i].Body = "" // reclaim space; the tombstone needs only the ID
	return true
}

// PutRaw installs a message record verbatim (merge use).
func (m *Mailbox) PutRaw(msg Message) {
	i := sort.Search(len(m.Messages), func(i int) bool { return m.Messages[i].ID >= msg.ID })
	if i < len(m.Messages) && m.Messages[i].ID == msg.ID {
		m.Messages[i] = msg
		return
	}
	m.Messages = append(m.Messages, Message{})
	copy(m.Messages[i+1:], m.Messages[i:])
	m.Messages[i] = msg
}

// EncodeMailbox serializes a mailbox.
func EncodeMailbox(m *Mailbox) []byte {
	b := binary.AppendUvarint(nil, mailMagic)
	b = binary.AppendUvarint(b, uint64(len(m.Messages)))
	appendStr := func(s string) {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	for _, msg := range m.Messages {
		appendStr(msg.ID)
		appendStr(msg.From)
		appendStr(msg.Body)
		if msg.Deleted {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// DecodeMailbox parses serialized mailbox content; empty input is an
// empty mailbox.
func DecodeMailbox(b []byte) (*Mailbox, error) {
	m := &Mailbox{}
	if len(b) == 0 {
		return m, nil
	}
	magic, k := binary.Uvarint(b)
	if k <= 0 || magic != mailMagic {
		return nil, fmt.Errorf("%w: bad mailbox magic", ErrCorrupt)
	}
	b = b[k:]
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, ErrCorrupt
	}
	b = b[k:]
	readStr := func() (string, error) {
		l, k := binary.Uvarint(b)
		if k <= 0 || uint64(len(b[k:])) < l {
			return "", ErrCorrupt
		}
		s := string(b[k : k+int(l)])
		b = b[k+int(l):]
		return s, nil
	}
	for i := uint64(0); i < n; i++ {
		var msg Message
		var err error
		if msg.ID, err = readStr(); err != nil {
			return nil, err
		}
		if msg.From, err = readStr(); err != nil {
			return nil, err
		}
		if msg.Body, err = readStr(); err != nil {
			return nil, err
		}
		if len(b) < 1 {
			return nil, ErrCorrupt
		}
		msg.Deleted = b[0] == 1
		b = b[1:]
		m.Messages = append(m.Messages, msg)
	}
	sort.Slice(m.Messages, func(i, j int) bool { return m.Messages[i].ID < m.Messages[j].ID })
	return m, nil
}

// ValidName reports whether a pathname component is legal: nonempty, no
// slash, not "." or "..".
func ValidName(name string) bool {
	return name != "" && name != "." && name != ".." && !strings.Contains(name, "/")
}
