package format

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness: decoding arbitrary bytes must never panic and never
// return a half-valid structure silently — either a clean error or a
// structurally sound value. Directory pages travel over the simulated
// wire and through reconciliation, so the decoder is a trust boundary.

func TestDecodeDirNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		b := make([]byte, int(n))
		r.Read(b) //nolint:errcheck // math/rand never fails
		d, err := DecodeDir(b)
		if err != nil {
			return true
		}
		// A successful decode must round-trip.
		b2 := EncodeDir(d)
		d2, err := DecodeDir(b2)
		if err != nil {
			return false
		}
		return len(d2.Entries) == len(d.Entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeMailboxNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		b := make([]byte, int(n))
		r.Read(b) //nolint:errcheck // math/rand never fails
		m, err := DecodeMailbox(b)
		if err != nil {
			return true
		}
		b2 := EncodeMailbox(m)
		m2, err := DecodeMailbox(b2)
		if err != nil {
			return false
		}
		return len(m2.Messages) == len(m.Messages)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDirTruncationsAllFailCleanly(t *testing.T) {
	d := &Directory{}
	d.Insert("some-name", 42)
	d.Insert("another", 7)
	d.Remove("another", nil)
	enc := EncodeDir(d)
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeDir(enc[:cut]); err == nil {
			// A truncation that still decodes must decode a prefix of
			// the entries, never garbage; with our length-prefixed
			// format every strict prefix must fail.
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(enc))
		}
	}
}
