package format

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/vclock"
)

func TestDirInsertLookupRemove(t *testing.T) {
	t.Parallel()
	d := &Directory{}
	d.Insert("bin", 2)
	d.Insert("etc", 3)
	d.Insert("abc", 4)

	if e, ok := d.Lookup("bin"); !ok || e.Inode != 2 {
		t.Fatalf("Lookup(bin) = %+v %v", e, ok)
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) should fail")
	}
	// Entries sorted by name.
	live := d.Live()
	if len(live) != 3 || live[0].Name != "abc" || live[1].Name != "bin" || live[2].Name != "etc" {
		t.Fatalf("Live = %+v", live)
	}

	vv := vclock.New().Bump(1)
	if !d.Remove("bin", vv) {
		t.Fatal("Remove(bin) failed")
	}
	if _, ok := d.Lookup("bin"); ok {
		t.Fatal("removed name still resolves")
	}
	// Tombstone retained with the delete-time VV.
	e, ok := d.LookupAny("bin")
	if !ok || !e.Deleted || !e.DelVV.Equal(vv) {
		t.Fatalf("tombstone = %+v %v", e, ok)
	}
	// Double remove reports false.
	if d.Remove("bin", vv) {
		t.Fatal("double remove should report false")
	}
	if d.Remove("never", vv) {
		t.Fatal("removing a missing name should report false")
	}
}

func TestDirInsertOverTombstoneResurrects(t *testing.T) {
	t.Parallel()
	d := &Directory{}
	d.Insert("f", 7)
	d.Remove("f", vclock.New())
	d.Insert("f", 9)
	e, ok := d.Lookup("f")
	if !ok || e.Inode != 9 || e.Deleted {
		t.Fatalf("resurrected entry = %+v %v", e, ok)
	}
}

func TestDirInsertReplaces(t *testing.T) {
	t.Parallel()
	d := &Directory{}
	d.Insert("f", 7)
	d.Insert("f", 8)
	if len(d.Entries) != 1 || d.Entries[0].Inode != 8 {
		t.Fatalf("entries = %+v", d.Entries)
	}
}

func TestDirEncodeDecodeRoundTrip(t *testing.T) {
	t.Parallel()
	d := &Directory{}
	d.Insert("usr", 5)
	d.Insert("bin", 2)
	d.Insert("tmp", 11)
	d.Remove("tmp", vclock.New().Bump(3).Bump(3))

	got, err := DecodeDir(EncodeDir(d))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, d)
	}
}

func TestDecodeDirEmpty(t *testing.T) {
	t.Parallel()
	d, err := DecodeDir(nil)
	if err != nil || len(d.Entries) != 0 {
		t.Fatalf("empty decode: %v %v", d, err)
	}
}

func TestDecodeDirCorrupt(t *testing.T) {
	t.Parallel()
	for _, b := range [][]byte{{0xff}, {0x44}, []byte("garbage data here")} {
		if _, err := DecodeDir(b); err == nil {
			t.Fatalf("DecodeDir(%v) should fail", b)
		}
	}
	// Truncated valid prefix.
	d := &Directory{}
	d.Insert("some-name", 1)
	enc := EncodeDir(d)
	if _, err := DecodeDir(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated directory should fail to decode")
	}
}

func TestMailboxDeliverDeleteRoundTrip(t *testing.T) {
	t.Parallel()
	m := &Mailbox{}
	m.Deliver(Message{ID: "s2-1", From: "bob", Body: "hello"})
	m.Deliver(Message{ID: "s1-1", From: "alice", Body: "hi"})
	m.Deliver(Message{ID: "s1-1", From: "dup", Body: "dup"}) // idempotent

	live := m.Live()
	if len(live) != 2 || live[0].ID != "s1-1" || live[0].From != "alice" {
		t.Fatalf("Live = %+v", live)
	}
	if !m.Delete("s1-1") {
		t.Fatal("Delete failed")
	}
	if m.Delete("s1-1") {
		t.Fatal("double delete should report false")
	}
	if len(m.Live()) != 1 {
		t.Fatalf("Live after delete = %+v", m.Live())
	}
	// Redelivery over a tombstone stays deleted.
	m.Deliver(Message{ID: "s1-1", From: "alice", Body: "hi"})
	if len(m.Live()) != 1 {
		t.Fatal("delivery over tombstone must not resurrect")
	}

	got, err := DecodeMailbox(EncodeMailbox(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestDecodeMailboxEmptyAndCorrupt(t *testing.T) {
	t.Parallel()
	m, err := DecodeMailbox(nil)
	if err != nil || len(m.Messages) != 0 {
		t.Fatalf("empty decode: %v %v", m, err)
	}
	if _, err := DecodeMailbox([]byte{0x01, 0x02}); err == nil {
		t.Fatal("corrupt mailbox should fail")
	}
}

func TestValidName(t *testing.T) {
	t.Parallel()
	valid := []string{"a", "file.txt", "with space", "vax", "11-45"}
	invalid := []string{"", ".", "..", "a/b", "/"}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func randomDir(r *rand.Rand) *Directory {
	d := &Directory{}
	n := r.Intn(10)
	names := []string{"a", "b", "c", "dir", "file", "x1", "x2", "mbox", "z", "deep"}
	for i := 0; i < n; i++ {
		name := names[r.Intn(len(names))]
		d.Insert(name, 1+randInode(r))
		if r.Intn(3) == 0 {
			vv := vclock.New()
			if r.Intn(2) == 0 {
				vv.Bump(vclock.SiteID(1 + r.Intn(3)))
			}
			d.Remove(name, vv)
		}
	}
	return d
}

func randInode(r *rand.Rand) storage.InodeNum { return storage.InodeNum(r.Intn(1000)) }

func TestPropertyDirRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDir(r)
		got, err := DecodeDir(EncodeDir(d))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDirEntriesAlwaysSorted(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDir(r)
		for i := 1; i < len(d.Entries); i++ {
			if d.Entries[i-1].Name >= d.Entries[i].Name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMailboxRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Mailbox{}
		for i := 0; i < r.Intn(12); i++ {
			id := string(rune('a'+r.Intn(6))) + "-" + string(rune('0'+r.Intn(10)))
			m.Deliver(Message{ID: id, From: "u", Body: "b"})
			if r.Intn(4) == 0 {
				m.Delete(id)
			}
		}
		got, err := DecodeMailbox(EncodeMailbox(m))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
