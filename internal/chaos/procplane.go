package chaos

// procplane.go is the process-level adversarial plane: when
// Config.Procs is set, the schedule interleaves remote run calls,
// cross-site signals, named pipes with the two ends on different
// sites, process migration, and nested transactions with the topology
// events, and a shadow model of every live resource checks the §5.6
// failure-action table: a run targeting a lost site returns
// ErrSiteFailed; a pipe whose far endpoint died delivers EOF or
// ErrPipeBroken, never a hang; a transaction straddling a failure
// aborts exactly once with no partial effects; a signal queued across
// a partition is delivered (or definitively dead) after the merge.
//
// Two disciplines keep the schedule a pure function of the seed:
// errors are logged as coarse classes (errClass), never raw %v chains,
// and the async Wait outcomes are recorded to a side list that is
// sorted and summarized only at finish — goroutine completion order
// never feeds the log. The plane also never issues a pipe read unless
// the model knows bytes are buffered: a read blocked inside an RPC
// handler counts as in-flight traffic and would deadlock the
// Quiesce barrier every topology event runs behind.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/txn"
	"repro/locus"
)

// procRec is the shadow model of one run child.
type procRec struct {
	pid        proc.PID
	parentSite locus.SiteID // where the shell (the Wait caller) lives
	host       locus.SiteID // current executing site per the model
	alive      bool         // the body should still be running
	// unsure marks an outcome the model cannot predict: a queued signal
	// that may replay, an orphaning that self-terminates asynchronously,
	// or a migration whose reply was lost.
	unsure   bool
	termSent bool // a SIGTERM was delivered successfully
}

// pipeRec is the shadow model of one named pipe with both ends open.
type pipeRec struct {
	path         string
	server       locus.SiteID // storage site serving the buffer
	wSite, rSite locus.SiteID
	w, rd        *proc.PipeEnd
	wrote        []byte // everything successfully written
	readPos      int    // everything successfully read back
	dead         bool
}

// txnRec is one open top-level transaction and the content it staged.
type txnRec struct {
	t     *txn.Txn
	site  locus.SiteID
	paths map[string][]byte
	open  bool
}

type waitRec struct {
	pid proc.PID
	st  proc.ExitStatus
}

type procPlane struct {
	r      *run
	shells map[locus.SiteID]*locus.Session
	procs  []*procRec
	pipes  []*pipeRec
	txns   []*txnRec
	// aborted maps path -> content that was staged only inside an
	// aborted transaction; check() asserts it survived nowhere.
	aborted map[string][]byte

	mu     sync.Mutex
	waits  []waitRec
	waitWG sync.WaitGroup

	nextPipe, nextTxn int
}

// newProcPlane registers the program bodies at every site, logs one
// shell in per site, and installs the load modules and the transaction
// directory.
func newProcPlane(r *run) (*procPlane, error) {
	p := &procPlane{
		r:       r,
		shells:  make(map[locus.SiteID]*locus.Session),
		aborted: make(map[string][]byte),
	}
	for _, id := range r.c.Sites() {
		mgr := r.c.Site(id).Proc
		mgr.Register("sit", func(ctx *proc.Ctx) int {
			<-ctx.Signals()
			return 0
		})
		mgr.Register("exit0", func(*proc.Ctx) int { return 0 })
		p.shells[id] = r.c.Site(id).Login(fmt.Sprintf("chaos%d", id))
	}
	se := p.shells[r.c.Sites()[0]]
	if err := se.WriteFile("/sit", []byte("go:sit\n")); err != nil {
		return nil, fmt.Errorf("chaos: installing /sit: %w", err)
	}
	if err := se.WriteFile("/exit0", []byte("go:exit0\n")); err != nil {
		return nil, fmt.Errorf("chaos: installing /exit0: %w", err)
	}
	if err := se.Mkdir("/txn"); err != nil {
		return nil, fmt.Errorf("chaos: mkdir /txn: %w", err)
	}
	r.c.Settle()
	return p, nil
}

// onRestart re-logs the crashed site's shell in: the crash discarded
// every volatile process table, including the old shell.
func (p *procPlane) onRestart(id locus.SiteID) {
	p.shells[id] = p.r.c.Site(id).Login(fmt.Sprintf("chaos%d", id))
}

// errClass renders an error as a coarse deterministic class for the
// replay log (raw messages embed site lists and transport chains that
// are not schedule-stable).
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, io.EOF):
		return "eof"
	case errors.Is(err, proc.ErrPipeBroken):
		return "pipebroken"
	case errors.Is(err, proc.ErrNoProcess):
		return "noprocess"
	case errors.Is(err, proc.ErrSiteFailed):
		return "sitefailed"
	case errors.Is(err, txn.ErrAborted):
		return "aborted"
	case errors.Is(err, txn.ErrDone):
		return "done"
	case errors.Is(err, netsim.ErrTimeout):
		return "timeout"
	case errors.Is(err, netsim.ErrUnreachable):
		return "unreachable"
	default:
		return "err"
	}
}

// op runs one process-plane operation.
func (p *procPlane) op() {
	switch roll := p.r.rng.Intn(100); {
	case roll < 25:
		p.opRun()
	case roll < 45:
		p.opSignal()
	case roll < 70:
		p.opPipe()
	case roll < 88:
		p.opTxn()
	default:
		p.opMigrate()
	}
}

// opRun starts a program from a random up shell at a random target
// site — including unreachable targets, which probes the §5.6 "remote
// fork/exec to a failed site returns an error" row directly.
func (p *procPlane) opRun() {
	r := p.r
	up := r.upSites()
	if len(up) == 0 {
		return
	}
	src := up[r.rng.Intn(len(up))]
	all := r.c.Sites()
	target := all[r.rng.Intn(len(all))]
	se := p.shells[src]
	reach := r.reachable(src, target)
	// Under message faults (or to a known-lost target) run the
	// self-exiting body: a run whose reply is lost may still have
	// spawned, and a stray sitter with an unknown PID would hang
	// DrainPrograms forever. exit0 strays clean up after themselves.
	prog := "/sit"
	if r.faulted || !reach {
		prog = "/exit0"
	}
	se.SetExecSite(target)
	pid, err := se.Run(prog)
	se.SetExecSite()
	r.log("proc run %s site %d->%d: %s", prog, src, target, errClass(err))
	switch {
	case err == nil:
		if !reach {
			r.violate("run %s from site %d to unreachable site %d succeeded; §5.6 requires an error", prog, src, target)
		}
		rec := &procRec{pid: pid, parentSite: src, host: target, alive: prog == "/sit"}
		p.procs = append(p.procs, rec)
		p.waitWG.Add(1)
		go func() {
			st := se.Wait(pid)
			p.mu.Lock()
			p.waits = append(p.waits, waitRec{pid: pid, st: st})
			p.mu.Unlock()
			p.waitWG.Done()
		}()
	case errors.Is(err, proc.ErrSiteFailed):
		// Resolving the load module depends on its CSS and storage sites,
		// not just the src->target link, so a typed failure is legitimate
		// whenever ANY site is currently lost or the wire is faulted.
		if reach && !r.disturbed() {
			r.violate("run %s from site %d to reachable site %d failed with ErrSiteFailed on a clean network", prog, src, target)
		}
	default:
		r.violate("run %s from site %d to site %d: unclassified error %v (want nil or ErrSiteFailed)", prog, src, target, err)
	}
}

// opSignal sends SIGTERM to a model process from a random sender site,
// probing cross-site delivery, forwarding through migration records,
// and the queued-replay path across partitions.
func (p *procPlane) opSignal() {
	r := p.r
	var cands []*procRec
	for _, rec := range p.procs {
		if rec.alive || rec.unsure {
			cands = append(cands, rec)
		}
	}
	up := r.upSites()
	if len(cands) == 0 || len(up) == 0 {
		return
	}
	rec := cands[r.rng.Intn(len(cands))]
	sender := up[r.rng.Intn(len(up))]
	err := r.c.Site(sender).Proc.Signal(rec.pid, proc.SIGTERM)
	r.log("proc signal site %d -> pid %d@%d: %s", sender, rec.pid.Num, rec.pid.Site, errClass(err))
	// Delivery crosses sender -> origin (name authority) -> host.
	healthy := r.reachable(sender, rec.pid.Site) && r.reachable(rec.pid.Site, rec.host)
	switch {
	case err == nil:
		rec.termSent = true
		rec.alive = false
	case errors.Is(err, proc.ErrNoProcess):
		// Legitimate when the body already exited (orphaning, earlier
		// queued signal, crash) — a violation only if the model was sure
		// it was alive on a clean network.
		if rec.alive && !rec.unsure && !rec.termSent && healthy && !r.faulted {
			r.violate("signal to live pid %d@%d returned ErrNoProcess on a clean network", rec.pid.Num, rec.pid.Site)
		}
		rec.alive = false
	case errors.Is(err, proc.ErrSiteFailed):
		if healthy && !r.faulted {
			r.violate("signal to pid %d@%d failed with ErrSiteFailed though sender %d, origin, and host %d are connected",
				rec.pid.Num, rec.pid.Site, sender, rec.host)
		}
		// The signal queued at the sender; the merge may replay it and
		// kill the body later.
		rec.unsure = true
	default:
		r.violate("signal to pid %d@%d: unclassified error %v", rec.pid.Num, rec.pid.Site, err)
	}
}

// opMigrate moves a process still at its origin to a random other
// site, probing §3.4 migration and its failure rows.
func (p *procPlane) opMigrate() {
	r := p.r
	var cands []*procRec
	for _, rec := range p.procs {
		if rec.alive && !rec.unsure && !rec.termSent && rec.host == rec.pid.Site && !r.down[rec.pid.Site] {
			cands = append(cands, rec)
		}
	}
	up := r.upSites()
	if len(cands) == 0 || len(up) == 0 {
		return
	}
	rec := cands[r.rng.Intn(len(cands))]
	target := up[r.rng.Intn(len(up))]
	if target == rec.host {
		return
	}
	origin := r.c.Site(rec.pid.Site).Proc
	pr, ok := origin.Process(rec.pid.Num)
	if !ok {
		// Exited between the model's last sighting and now.
		rec.alive = false
		return
	}
	err := origin.Migrate(pr, target)
	r.log("proc migrate pid %d@%d -> site %d: %s", rec.pid.Num, rec.pid.Site, target, errClass(err))
	reach := r.reachable(rec.pid.Site, target)
	switch {
	case err == nil:
		if !reach {
			r.violate("migrate pid %d@%d to unreachable site %d succeeded", rec.pid.Num, rec.pid.Site, target)
		}
		rec.host = target
	case errors.Is(err, proc.ErrSiteFailed):
		if reach && !r.faulted {
			r.violate("migrate pid %d@%d to reachable site %d failed with ErrSiteFailed on a clean network",
				rec.pid.Num, rec.pid.Site, target)
		}
		if r.faulted {
			// The request may have landed (reply lost): a second
			// incarnation can exist at the target. finish() sweeps it.
			rec.unsure = true
		}
	case errors.Is(err, proc.ErrNoProcess):
		rec.alive = false
	default:
		r.violate("migrate pid %d@%d: unclassified error %v", rec.pid.Num, rec.pid.Site, err)
	}
}

// opPipe exercises the live named pipes: create, write, model-checked
// read, or drain-and-close.
func (p *procPlane) opPipe() {
	r := p.r
	var live []*pipeRec
	for _, pr := range p.pipes {
		if !pr.dead {
			live = append(live, pr)
		}
	}
	if len(live) == 0 {
		if !r.disturbed() {
			p.pipeCreate()
		}
		return
	}
	pr := live[r.rng.Intn(len(live))]
	switch roll := r.rng.Intn(100); {
	case roll < 45:
		p.pipeWrite(pr)
	case roll < 80:
		p.pipeRead(pr)
	default:
		p.pipeDrainClose(pr)
	}
}

func (p *procPlane) pipeCreate() {
	r := p.r
	up := r.upSites()
	if len(up) == 0 {
		return
	}
	p.nextPipe++
	path := fmt.Sprintf("/pipe%d", p.nextPipe)
	se := p.shells[up[r.rng.Intn(len(up))]]
	if err := se.Mkfifo(path); err != nil {
		r.log("proc mkfifo %s: %s", path, errClass(err))
		return
	}
	r.c.Settle() // let the fifo inode replicate before opening elsewhere
	wSite := up[r.rng.Intn(len(up))]
	rSite := up[r.rng.Intn(len(up))]
	w, err := p.shells[wSite].OpenPipe(path, true)
	if err != nil {
		r.log("proc pipe-open-w %s at %d: %s", path, wSite, errClass(err))
		// A past fault burst may have stranded the fifo's directory-entry
		// propagation beyond the retry budget; until the next topology
		// change requeues it, the name can be missing at other sites.
		if !r.strandRisk {
			r.violate("opening pipe writer %s at site %d on a clean network: %v", path, wSite, err)
		}
		return
	}
	rd, err := p.shells[rSite].OpenPipe(path, false)
	if err != nil {
		r.log("proc pipe-open-r %s at %d: %s", path, rSite, errClass(err))
		if !r.strandRisk {
			r.violate("opening pipe reader %s at site %d on a clean network: %v", path, rSite, err)
		}
		w.Close() // error unchecked by design: abandoning half-open pipe
		return
	}
	p.pipes = append(p.pipes, &pipeRec{
		path: path, server: w.Server(), wSite: wSite, rSite: rSite, w: w, rd: rd,
	})
	r.log("proc pipe %s server=%d w=%d r=%d", path, w.Server(), wSite, rSite)
}

func (p *procPlane) pipeWrite(pr *pipeRec) {
	r := p.r
	n := 8 + r.rng.Intn(64)
	data := make([]byte, n)
	for i := range data {
		data[i] = byte('a' + (p.nextPipe+i)%26)
	}
	err := pr.w.Write(data)
	r.log("proc pipe-write %s %d bytes: %s", pr.path, n, errClass(err))
	if err == nil {
		pr.wrote = append(pr.wrote, data...)
		return
	}
	healthy := r.reachable(pr.wSite, pr.server) && !r.down[pr.rSite]
	if healthy && !r.faulted {
		r.violate("pipe write %s failed on a clean network: %v", pr.path, err)
	}
	pr.dead = true
}

// pipeRead reads only when the model knows bytes are buffered at the
// server, so it can never block inside the RPC handler; the bytes must
// match what was written, in order.
func (p *procPlane) pipeRead(pr *pipeRec) {
	r := p.r
	avail := len(pr.wrote) - pr.readPos
	if avail == 0 {
		return
	}
	data, err := pr.rd.Read(avail)
	r.log("proc pipe-read %s %d bytes: %s", pr.path, len(data), errClass(err))
	if err == nil {
		want := pr.wrote[pr.readPos : pr.readPos+len(data)]
		if !bytes.Equal(data, want) {
			r.violate("pipe %s returned wrong bytes at offset %d (%d bytes)", pr.path, pr.readPos, len(data))
		}
		pr.readPos += len(data)
		return
	}
	if err == io.EOF {
		r.violate("pipe %s returned EOF with the writer still open", pr.path)
	} else if !r.faulted && r.reachable(pr.rSite, pr.server) {
		r.violate("pipe read %s failed on a clean network: %v", pr.path, err)
	}
	pr.dead = true
}

// pipeDrainClose closes the writer, drains the reader to EOF checking
// every byte, and closes the reader: the normal shutdown row.
func (p *procPlane) pipeDrainClose(pr *pipeRec) {
	r := p.r
	pr.dead = true
	if err := pr.w.Close(); err != nil {
		r.log("proc pipe-close-w %s: %s", pr.path, errClass(err))
		if !r.faulted && r.reachable(pr.wSite, pr.server) {
			r.violate("pipe writer close %s failed on a clean network: %v", pr.path, err)
		}
		return
	}
	got := 0
	for i := 0; i < 100; i++ {
		data, err := pr.rd.Read(4096)
		if err == io.EOF {
			if pr.readPos+got != len(pr.wrote) {
				r.violate("pipe %s delivered EOF after %d of %d buffered bytes", pr.path, pr.readPos+got, len(pr.wrote))
			}
			break
		}
		if err != nil {
			if !r.faulted && r.reachable(pr.rSite, pr.server) {
				r.violate("pipe drain %s failed on a clean network: %v", pr.path, err)
			}
			break
		}
		want := pr.wrote[pr.readPos+got:]
		if len(data) > len(want) || !bytes.Equal(data, want[:len(data)]) {
			r.violate("pipe %s drained wrong bytes at offset %d", pr.path, pr.readPos+got)
			break
		}
		got += len(data)
	}
	r.log("proc pipe-drain %s %d bytes", pr.path, got)
	pr.rd.Close() // error unchecked by design: reader close after drain is advisory
}

// opTxn begins, commits, or aborts nested transactions.
func (p *procPlane) opTxn() {
	r := p.r
	var open []*txnRec
	for _, tr := range p.txns {
		if tr.open {
			open = append(open, tr)
		}
	}
	if len(open) < 2 && r.rng.Intn(2) == 0 {
		p.txnBegin()
		return
	}
	if len(open) == 0 {
		p.txnBegin()
		return
	}
	tr := open[r.rng.Intn(len(open))]
	if r.rng.Intn(100) < 60 {
		p.txnCommit(tr)
	} else {
		p.txnAbort(tr)
	}
}

// txnBegin opens a top-level transaction at a random up site and
// stages two files: one through a committed subtransaction, one
// directly in the parent — the nested-commit row.
func (p *procPlane) txnBegin() {
	r := p.r
	up := r.upSites()
	if len(up) == 0 {
		return
	}
	site := up[r.rng.Intn(len(up))]
	p.nextTxn++
	pa := fmt.Sprintf("/txn/t%d_a", p.nextTxn)
	pb := fmt.Sprintf("/txn/t%d_b", p.nextTxn)
	ca := []byte(fmt.Sprintf("txn %d sub seed=%d\n", p.nextTxn, r.cfg.Seed))
	cb := []byte(fmt.Sprintf("txn %d top seed=%d\n", p.nextTxn, r.cfg.Seed))

	t := p.shells[site].Begin()
	tr := &txnRec{t: t, site: site, paths: map[string][]byte{pa: ca, pb: cb}, open: true}
	stage := func() error {
		sub, err := t.Begin()
		if err != nil {
			return err
		}
		if err := sub.CreateFile(pa, ca); err != nil {
			return err
		}
		if err := sub.Commit(); err != nil {
			return err
		}
		return t.CreateFile(pb, cb)
	}
	if err := stage(); err != nil {
		r.log("proc txn %d begin at %d: %s", p.nextTxn, site, errClass(err))
		p.recordAborted(tr)
		t.Abort() // error unchecked by design: best-effort abort of a failed stage
		return
	}
	p.txns = append(p.txns, tr)
	r.log("proc txn %d begin at %d: ok", p.nextTxn, site)
}

// recordAborted marks a transaction's staged content as
// must-not-survive.
func (p *procPlane) recordAborted(tr *txnRec) {
	tr.open = false
	for path, content := range tr.paths {
		p.aborted[path] = content
	}
}

func (p *procPlane) txnCommit(tr *txnRec) {
	r := p.r
	err := tr.t.Commit()
	r.log("proc txn commit at %d: %s", tr.site, errClass(err))
	switch {
	case err == nil:
		tr.open = false
		// Committed content joins the filesystem model; a commit under a
		// disturbed topology may still race the merge, so mark dirty
		// exactly like a workload write would be.
		for path, content := range tr.paths {
			st := r.files[path]
			if st == nil {
				st = &fileState{}
				r.files[path] = st
			}
			st.exists = true
			st.content = content
			st.dirty = st.dirty || r.disturbed()
		}
	case errors.Is(err, txn.ErrAborted) || errors.Is(err, txn.ErrDone):
		// The partition cleanup aborted it first. Exactly-once: a second
		// abort must be a no-op reporting ErrDone.
		p.recordAborted(tr)
		if aerr := tr.t.Abort(); !errors.Is(aerr, txn.ErrDone) && !errors.Is(aerr, txn.ErrAborted) {
			r.violate("second abort after failed commit returned %v, want ErrDone", aerr)
		}
	default:
		// A mid-flush transport failure: the commit outcome is unknown,
		// so the staged paths are only marked unpredictable, not doomed.
		tr.open = false
		for path := range tr.paths {
			st := r.files[path]
			if st == nil {
				st = &fileState{}
				r.files[path] = st
			}
			st.dirty = true
		}
		if !r.disturbed() {
			r.violate("txn commit at site %d failed on a clean network: %v", tr.site, err)
		}
	}
}

func (p *procPlane) txnAbort(tr *txnRec) {
	r := p.r
	p.recordAborted(tr)
	err := tr.t.Abort()
	r.log("proc txn abort at %d: %s", tr.site, errClass(err))
	if err != nil && !errors.Is(err, txn.ErrDone) && !r.disturbed() {
		r.violate("txn abort at site %d failed on a clean network: %v", tr.site, err)
	}
	// Exactly-once: committing after abort must fail definitively.
	if cerr := tr.t.Commit(); !errors.Is(cerr, txn.ErrDone) && !errors.Is(cerr, txn.ErrAborted) {
		r.violate("commit after abort returned %v, want ErrDone or ErrAborted", cerr)
	}
}

// afterFailure runs immediately after a partition or crash event: it
// updates the shadow model for lost hosts and probes the §5.6 rows the
// event just made testable.
func (p *procPlane) afterFailure() {
	r := p.r
	for _, rec := range p.procs {
		if !rec.alive && !rec.unsure {
			continue
		}
		if r.down[rec.host] || r.down[rec.pid.Site] {
			// The executing site (or the name authority whose loss kills
			// the migrant) is gone.
			rec.alive = false
			rec.unsure = true
			continue
		}
		if !r.reachable(rec.host, rec.parentSite) || !r.reachable(rec.host, rec.pid.Site) {
			// Orphaned: SIGPARENTERR terminates the body asynchronously.
			rec.unsure = true
		}
	}
	p.probeRunToLost()
	for _, pr := range p.pipes {
		if !pr.dead {
			p.probePipe(pr)
		}
	}
}

// probeRunToLost directly drives the §5.6 "remote process call to a
// failed site" row: a run targeted at the first unreachable site must
// return ErrSiteFailed.
func (p *procPlane) probeRunToLost() {
	r := p.r
	up := r.upSites()
	if len(up) == 0 {
		return
	}
	src := up[0]
	var lost locus.SiteID
	for _, id := range r.c.Sites() {
		if id != src && !r.reachable(src, id) {
			lost = id
			break
		}
	}
	if lost == 0 {
		return
	}
	se := p.shells[src]
	se.SetExecSite(lost)
	_, err := se.Run("/exit0")
	se.SetExecSite()
	r.log("proc probe run site %d->%d: %s", src, lost, errClass(err))
	if !errors.Is(err, proc.ErrSiteFailed) {
		r.violate("run from site %d to lost site %d returned %v; §5.6 requires ErrSiteFailed", src, lost, err)
	}
}

// probePipe checks the pipe failure rows right after the event that
// severed one of its three sites.
func (p *procPlane) probePipe(pr *pipeRec) {
	r := p.r
	wLost := !r.reachable(pr.wSite, pr.server) || r.down[pr.wSite]
	rLost := !r.reachable(pr.rSite, pr.server) || r.down[pr.rSite]
	serverLostW := !r.reachable(pr.wSite, pr.server)
	switch {
	case serverLostW && !r.down[pr.wSite]:
		// The buffer's site is gone from the writer's view: the next
		// write must fail typed, not hang.
		err := pr.w.Write([]byte("probe"))
		r.log("proc probe pipe-write %s: %s", pr.path, errClass(err))
		if err == nil || !errors.Is(err, proc.ErrSiteFailed) && !errors.Is(err, proc.ErrPipeBroken) {
			r.violate("pipe write %s after server site lost returned %v; want ErrSiteFailed", pr.path, err)
		}
		pr.dead = true
	case wLost && !rLost:
		// Writer's site lost, reader fine: §5.6 requires the reader to
		// see everything buffered and then EOF — never a hang.
		p.probeReaderEOF(pr)
		pr.dead = true
	case rLost && !wLost:
		// Reader's site lost, writer fine: the next write must report
		// the pipe broken.
		err := pr.w.Write([]byte("probe"))
		r.log("proc probe pipe-write %s: %s", pr.path, errClass(err))
		if !errors.Is(err, proc.ErrPipeBroken) && !errors.Is(err, proc.ErrSiteFailed) {
			r.violate("pipe write %s after reader site lost returned %v; want ErrPipeBroken", pr.path, err)
		}
		pr.dead = true
	case wLost && rLost:
		pr.dead = true
	}
}

// probeReaderEOF drains the reader after the writer's site died. The
// server already ran dropSites (the topology event completed before
// this probe), so the pipe is closed and the reads return buffered
// bytes then EOF without blocking; the wall timeout converts a §5.6
// regression (hang) into a violation instead of a stuck harness.
func (p *procPlane) probeReaderEOF(pr *pipeRec) {
	r := p.r
	type readResult struct {
		got int
		err error
	}
	done := make(chan readResult, 1)
	go func() {
		got := 0
		for i := 0; i < 100; i++ {
			data, err := pr.rd.Read(4096)
			if err != nil {
				done <- readResult{got, err}
				return
			}
			got += len(data)
		}
		done <- readResult{got, nil}
	}()
	select {
	case res := <-done:
		r.log("proc probe pipe-eof %s %d bytes: %s", pr.path, res.got, errClass(res.err))
		switch {
		case res.err == io.EOF:
			// Bytes already consumed plus the drain must cover what was
			// written; the tail written closest to the failure may have
			// been acknowledged but is all buffered at the still-up
			// server, so the count must match exactly.
			if pr.readPos+res.got != len(pr.wrote) {
				r.violate("pipe %s EOF after %d of %d bytes following writer-site loss",
					pr.path, pr.readPos+res.got, len(pr.wrote))
			}
		case errors.Is(res.err, proc.ErrSiteFailed) && r.faulted:
			// A fault burst can eat the read exchange itself.
		default:
			r.violate("pipe %s read after writer-site loss returned %v; §5.6 requires EOF", pr.path, res.err)
		}
	case <-time.After(5 * time.Second):
		r.violate("pipe %s read HUNG after writer-site loss; §5.6 requires EOF, never a hang", pr.path)
	}
	pr.rd.Close() // error unchecked by design: retiring a probed pipe
}

// finish runs after the final heal: every prescribed outcome must now
// have landed. It terminates the surviving bodies, sweeps strays,
// joins every program goroutine and Wait caller, settles the
// transactions, and asserts the queues drained.
func (p *procPlane) finish() {
	r := p.r
	// Terminate every body the model still thinks may be running. After
	// a full heal each signal must succeed or report a definitive
	// ErrNoProcess — ErrSiteFailed would mean the heal left the name
	// authority unreachable.
	for _, rec := range p.procs {
		if !rec.alive && !rec.unsure {
			continue
		}
		err := r.c.Site(rec.parentSite).Proc.Signal(rec.pid, proc.SIGTERM)
		r.log("proc finish signal pid %d@%d: %s", rec.pid.Num, rec.pid.Site, errClass(err))
		if err != nil && !errors.Is(err, proc.ErrNoProcess) {
			r.violate("terminating pid %d@%d after full heal: %v (want nil or ErrNoProcess)",
				rec.pid.Num, rec.pid.Site, err)
		}
		rec.alive = false
	}
	// Every Wait caller must now be released with a definitive status:
	// the terminations above unblock the live ones, and every earlier
	// failure must already have produced its §5.6 notification. Joining
	// them first also makes the stray sweep deterministic — a signaled
	// body has fully exited by the time its Wait returns.
	waited := make(chan struct{})
	go func() {
		p.waitWG.Wait()
		close(waited)
	}()
	select {
	case <-waited:
	case <-time.After(10 * time.Second):
		r.violate("Wait callers still blocked after final heal; §5.6 requires exit or failure notification")
	}
	// Sweep strays the model never learned a PID for: the far half of a
	// migration whose reply was lost. These have no Wait caller and
	// would block DrainPrograms forever.
	for _, id := range r.c.Sites() {
		mgr := r.c.Site(id).Proc
		for _, pid := range mgr.LivePIDs() {
			if mgr.KillLocal(pid) {
				r.log("proc finish sweep pid %d@%d at site %d", pid.Num, pid.Site, id)
			}
		}
	}
	// Every program goroutine must now run to completion: a hang here
	// is a §5.6 notification that never arrived.
	drained := make(chan struct{})
	go func() {
		for _, id := range r.c.Sites() {
			r.c.Site(id).Proc.DrainPrograms()
		}
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		r.violate("program bodies failed to drain after final heal (stranded process goroutine)")
	}
	p.mu.Lock()
	waits := append([]waitRec(nil), p.waits...)
	p.mu.Unlock()
	sort.Slice(waits, func(i, j int) bool {
		if waits[i].pid.Site != waits[j].pid.Site {
			return waits[i].pid.Site < waits[j].pid.Site
		}
		return waits[i].pid.Num < waits[j].pid.Num
	})
	for _, wr := range waits {
		if wr.st.Err != nil && !errors.Is(wr.st.Err, proc.ErrSiteFailed) && !errors.Is(wr.st.Err, proc.ErrNoProcess) {
			r.violate("wait on pid %d@%d returned unclassified error %v", wr.pid.Num, wr.pid.Site, wr.st.Err)
		}
	}
	r.log("proc finish waits=%d", len(waits))
	// Commit whatever transactions are still open (their locks would
	// otherwise hold the workload's files hostage), then assert the
	// transaction tables and signal queues drained everywhere.
	for _, tr := range p.txns {
		if tr.open {
			p.txnCommit(tr)
		}
	}
	for _, id := range r.c.Sites() {
		if n := r.c.Site(id).Proc.QueuedSignals(); n != 0 {
			r.violate("site %d still holds %d queued signals after final heal", id, n)
		}
		if n := r.c.Site(id).Txn.ActiveCount(); n != 0 {
			r.violate("site %d still holds %d active transactions after final heal", id, n)
		}
	}
}
