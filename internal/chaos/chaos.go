// Package chaos is a seeded randomized fault harness for the LOCUS
// simulation: it interleaves a multi-site filesystem workload with
// partitions, heals, crashes, restarts, and probabilistic message
// faults, then heals everything, reconciles, and asserts the global
// invariants the paper's recovery machinery promises (§2.3.6, §4):
// identical directory trees at every site, version-vector agreement on
// every copy, no committed file lost, no shadow-page leaks, no orphan
// inodes, and a clean deep fsck.
//
// Every run is driven by one uint64 seed. The schedule (which ops run
// where, when partitions form and heal, when sites crash) is a pure
// function of the seed, so a failing run is reproduced by re-running
// its seed; Result.Schedule is the replay log a failure prints.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/workload"
	"repro/locus"
)

// Config parameterizes one chaos run.
type Config struct {
	// Seed drives every random choice in the run.
	Seed uint64
	// Sites is the cluster size (default 3).
	Sites int
	// Steps is the number of schedule steps (default 80).
	Steps int
	// Drop, Dup, Delay are the probabilistic fault rates applied during
	// fault bursts (defaults 0.05 / 0.05 / 0.10).
	Drop, Dup, Delay float64
	// DisableDedup turns the callee-side at-most-once tables off, the
	// deliberate regression the harness exists to catch: retried
	// mutations replay and the invariant checks report the damage.
	DisableDedup bool
	// SerialPull disables bulk windowed propagation at every site,
	// forcing the legacy one-exchange-per-page pull path, so the pinned
	// seeds exercise both protocol variants under faults.
	SerialPull bool
	// Leases enables the lease/intent layer at every site, so the pinned
	// seeds exercise delegation grants, batched revocation, and lease
	// reclaim across crashes and partitions. The post-heal fsck then also
	// checks for stranded lease records.
	Leases bool
	// Procs enables the process-level adversarial plane: remote run,
	// cross-site signals, named pipes spanning sites, migration, and
	// nested transactions interleave with the topology events, and a
	// §5.6 failure-action shadow model checks every prescribed outcome
	// (error to caller, EOF not hang, exactly-once abort, queued-signal
	// replay) after each failure event and at final heal.
	Procs bool
	// Workload replaces a share of the hand-rolled schedule ops with
	// steps of the multi-tenant workload engine (internal/workload)
	// bound to the same cluster: Zipf-skewed reads through the pooled
	// page path, zero-copy write casts, build-style rename cycles, and
	// readdir/stat traffic interleave with partitions, crashes, and
	// fault bursts. The engine runs with SkipQuiesce (chaos owns the
	// schedule) and its site-liveness gate wired to the harness
	// topology model; the post-heal invariant checks must still hold
	// over the engine's tenant trees.
	Workload bool
}

func (c *Config) fill() {
	if c.Sites == 0 {
		c.Sites = 3
	}
	if c.Steps == 0 {
		c.Steps = 80
	}
	if c.Drop == 0 && c.Dup == 0 && c.Delay == 0 {
		c.Drop, c.Dup, c.Delay = 0.05, 0.05, 0.10
	}
}

// Result is the outcome of a chaos run.
type Result struct {
	Seed uint64
	// Config is the filled configuration the run used; ReplayCommand
	// renders it back into a copy-pasteable go test invocation.
	Config Config
	// Schedule is the replay log: one line per schedule step.
	Schedule []string
	// Violations are the invariant failures found after the final heal.
	// Empty means the run upheld every guarantee.
	Violations []string
	// Stats is the network snapshot at the end of the run.
	Stats netsim.Snapshot
}

// ReplayCommand renders the one-line command that re-runs exactly this
// schedule: the seed plus every non-default Config toggle, mapped to the
// -chaos.* flags TestChaosExtraSeed consumes.
func (r *Result) ReplayCommand() string {
	var b strings.Builder
	fmt.Fprintf(&b, "go test ./internal/chaos -run TestChaosExtraSeed -chaos.seed=%d", r.Seed)
	c := r.Config
	if c.Sites != 3 {
		fmt.Fprintf(&b, " -chaos.sites=%d", c.Sites)
	}
	if c.Steps != 80 {
		fmt.Fprintf(&b, " -chaos.steps=%d", c.Steps)
	}
	if c.Drop != 0.05 || c.Dup != 0.05 || c.Delay != 0.10 {
		fmt.Fprintf(&b, " -chaos.drop=%g -chaos.dup=%g -chaos.delay=%g", c.Drop, c.Dup, c.Delay)
	}
	if c.DisableDedup {
		b.WriteString(" -chaos.dedupoff")
	}
	if c.SerialPull {
		b.WriteString(" -chaos.serialpull")
	}
	if c.Leases {
		b.WriteString(" -chaos.leases")
	}
	if c.Procs {
		b.WriteString(" -chaos.procs")
	}
	if c.Workload {
		b.WriteString(" -chaos.workload")
	}
	return b.String()
}

// String renders the failure report (replay command, seed, violations,
// schedule).
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos run seed=%d: %d violation(s)\n", r.Seed, len(r.Violations))
	fmt.Fprintf(&b, "  replay: %s\n", r.ReplayCommand())
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	b.WriteString("  schedule:\n")
	for i, s := range r.Schedule {
		fmt.Fprintf(&b, "    %3d %s\n", i, s)
	}
	return b.String()
}

// fileState is the harness's model of one path it created.
type fileState struct {
	exists  bool
	content []byte
	// dirty marks content written while the cluster was partitioned (or
	// the write outcome was unknown): after the heal, reconciliation may
	// legitimately keep either divergent copy, so only existence and
	// cross-site agreement are asserted, not the exact bytes.
	dirty bool
}

// run holds the evolving state of one chaos schedule.
type run struct {
	cfg   Config
	rng   *rand.Rand
	c     *locus.Cluster
	res   *Result
	files map[string]*fileState
	dirs  []string
	// dirtyDirs marks directories created while the topology was
	// disturbed: they (and thus everything beneath them) may be
	// conflict-renamed at merge time.
	dirtyDirs map[string]bool
	down      map[locus.SiteID]bool
	parted    bool
	faulted   bool
	// strandRisk is set while a past fault burst may have stranded an
	// async propagation beyond the retry budget: a name committed at one
	// site might not be visible at another until the next topology
	// change requeues stalled propagations. Merge and restart clear it.
	strandRisk bool
	nextID     int
	// groups is the current partition (nil when whole), for reachability
	// queries by the process plane.
	groups [][]locus.SiteID
	// plane is the process-level adversarial plane (nil unless
	// Config.Procs).
	plane *procPlane
	// eng is the multi-tenant workload engine (nil unless
	// Config.Workload).
	eng *workload.Engine
}

// reachable reports whether sites a and b can currently exchange
// messages, per the harness's own topology model.
func (r *run) reachable(a, b locus.SiteID) bool {
	if r.down[a] || r.down[b] {
		return false
	}
	if a == b || r.groups == nil {
		return true
	}
	for _, g := range r.groups {
		ina, inb := false, false
		for _, s := range g {
			if s == a {
				ina = true
			}
			if s == b {
				inb = true
			}
		}
		if ina || inb {
			return ina && inb
		}
	}
	return false
}

// disturbed reports whether the cluster is currently in a state where a
// successful operation can still race a conflicting update elsewhere:
// partitioned, or with a crashed site whose disk holds old state.
// (Message faults alone never cause divergence — the at-most-once
// retry plane absorbs them — but a fault burst can strand an async
// propagation past the retry budget, leaving a window a later
// partition merge turns into a name conflict, so it counts too.)
func (r *run) disturbed() bool {
	return r.parted || len(r.down) > 0 || r.faulted
}

// Run executes one seeded chaos schedule and returns its result. The
// error return is for harness-level failures (cluster construction);
// invariant failures land in Result.Violations.
func Run(cfg Config) (*Result, error) {
	cfg.fill()
	c, err := locus.Simple(cfg.Sites)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if cfg.DisableDedup {
		c.Network().SetDedup(false)
	}
	if cfg.SerialPull {
		for _, id := range c.Sites() {
			c.Site(id).FS.SetBulkPull(false)
		}
	}
	if cfg.Leases {
		for _, id := range c.Sites() {
			c.Site(id).FS.SetLeases(true)
		}
	}

	r := &run{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(int64(cfg.Seed))), // seeded schedule PRNG, not a clock
		c:         c,
		res:       &Result{Seed: cfg.Seed, Config: cfg},
		files:     make(map[string]*fileState),
		dirs:      []string{"/"},
		dirtyDirs: make(map[string]bool),
		down:      make(map[locus.SiteID]bool),
	}
	if cfg.Procs {
		plane, err := newProcPlane(r)
		if err != nil {
			return nil, err
		}
		r.plane = plane
	}
	if cfg.Workload {
		// A small fleet with an op budget the bounded schedule can
		// never exhaust: two actors per tenant, eight Zipf-ranked files
		// each. The liveness gate reads the harness's own topology
		// model, so an actor on a crashed site skips its turn instead
		// of retrying into a dead network.
		eng, err := workload.New(c, workload.Config{
			Seed:        cfg.Seed,
			SkipQuiesce: true,
			Alive:       func(id locus.SiteID) bool { return !r.down[id] },
			Tenants:     workload.DefaultTenants(2, cfg.Steps, 8),
		})
		if err != nil {
			return nil, err
		}
		if err := eng.Setup(); err != nil {
			return nil, err
		}
		r.eng = eng
	}

	for step := 0; step < cfg.Steps; step++ {
		r.step()
	}
	r.heal()
	r.check()
	r.res.Stats = c.Stats()
	return r.res, nil
}

func (r *run) log(format string, args ...any) {
	r.res.Schedule = append(r.res.Schedule, fmt.Sprintf(format, args...))
}

func (r *run) violate(format string, args ...any) {
	r.res.Violations = append(r.res.Violations, fmt.Sprintf(format, args...))
}

// upSites returns the ids of sites currently up, ascending.
func (r *run) upSites() []locus.SiteID {
	var out []locus.SiteID
	for _, id := range r.c.Sites() {
		if !r.down[id] {
			out = append(out, id)
		}
	}
	return out
}

// step runs one schedule step: usually a workload op, sometimes a
// topology or fault event.
func (r *run) step() {
	switch roll := r.rng.Intn(100); {
	case roll < 8:
		r.eventPartition()
	case roll < 14:
		r.eventMerge()
	case roll < 20:
		r.eventCrash()
	case roll < 26:
		r.eventRestart()
	case roll < 32:
		r.eventFaultBurst()
	case roll < 36:
		r.log("settle (%d pulls)", r.c.Settle())
	default:
		// Guarded draws: a nil plane/engine must not consume an Intn,
		// so schedules for configs without the toggle replay unchanged.
		if r.eng != nil && r.rng.Intn(100) < 40 {
			r.engineOp()
		} else if r.plane != nil && r.rng.Intn(100) < 45 {
			r.plane.op()
		} else {
			r.workloadOp()
		}
	}
}

// engineOp advances the multi-tenant workload engine one deterministic
// step (or falls back to a harness op once the engine is exhausted).
func (r *run) engineOp() {
	if !r.eng.Step() {
		r.workloadOp()
		return
	}
	res := r.eng.Result()
	r.log("workload engine step (ops=%d errors=%d)", res.Ops, res.Errors)
}

// eventPartition splits the up sites into two groups.
func (r *run) eventPartition() {
	up := r.upSites()
	if r.parted || len(up) < 2 {
		return
	}
	cut := 1 + r.rng.Intn(len(up)-1)
	// Random subset: shuffle then split.
	r.rng.Shuffle(len(up), func(i, j int) { up[i], up[j] = up[j], up[i] })
	a, b := up[:cut], up[cut:]
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	r.c.Partition(a, b)
	r.parted = true
	r.groups = [][]locus.SiteID{a, b}
	r.log("partition %v | %v", a, b)
	if r.plane != nil {
		r.plane.afterFailure()
	}
}

// eventMerge heals a partition (and any crashed-site cut) via the merge
// protocol plus reconciliation.
func (r *run) eventMerge() {
	if !r.parted {
		return
	}
	rep, err := r.c.Merge()
	// Merge restarts nothing, but HealAll reconnects only up sites;
	// crashed sites stay down.
	r.parted = false
	r.groups = nil
	r.strandRisk = r.faulted
	r.log("merge (conflicts=%d, propagated=%d, err=%v)", rep.ConflictsReported, rep.Propagated, err)
	r.resolveConflicts()
}

// eventCrash abruptly takes a random up site down, keeping at least one
// site alive.
func (r *run) eventCrash() {
	up := r.upSites()
	if len(up) < 2 {
		return
	}
	id := up[r.rng.Intn(len(up))]
	r.c.Crash(id)
	r.down[id] = true
	// A crash severs the victim from everyone; from the survivors' view
	// the network now has one active partition again.
	r.log("crash site %d", id)
	if r.plane != nil {
		r.plane.afterFailure()
	}
}

// eventRestart brings a random crashed site back (which also heals any
// partition, since Restart runs the full merge protocol).
func (r *run) eventRestart() {
	var downs []locus.SiteID
	for id, d := range r.down {
		if d {
			downs = append(downs, id)
		}
	}
	if len(downs) == 0 {
		return
	}
	sort.Slice(downs, func(i, j int) bool { return downs[i] < downs[j] })
	id := downs[r.rng.Intn(len(downs))]
	rep, err := r.c.Restart(id)
	delete(r.down, id)
	r.parted = false
	r.groups = nil
	r.strandRisk = r.faulted
	r.log("restart site %d (conflicts=%d, err=%v)", id, rep.ConflictsReported, err)
	if r.plane != nil {
		r.plane.onRestart(id)
	}
	r.resolveConflicts()
}

// eventFaultBurst toggles the probabilistic fault plane.
func (r *run) eventFaultBurst() {
	if r.faulted {
		r.c.Network().DisableFaults()
		r.faulted = false
		r.log("faults off")
		return
	}
	r.c.Network().EnableFaults(netsim.FaultConfig{
		Seed:  r.cfg.Seed ^ uint64(r.nextID)<<32 ^ 0x9e3779b97f4a7c15,
		Rates: netsim.FaultRates{Drop: r.cfg.Drop, Dup: r.cfg.Dup, Delay: r.cfg.Delay, DelayMaxUs: 2000},
	})
	r.faulted = true
	r.strandRisk = true
	r.log("faults on (drop=%.2f dup=%.2f delay=%.2f)", r.cfg.Drop, r.cfg.Dup, r.cfg.Delay)
}

// workloadOp performs one filesystem operation at a random up site.
func (r *run) workloadOp() {
	up := r.upSites()
	if len(up) == 0 {
		return
	}
	site := up[r.rng.Intn(len(up))]
	se := r.c.Site(site).Login(fmt.Sprintf("u%d", site))

	switch roll := r.rng.Intn(100); {
	case roll < 30: // create a new file
		r.nextID++
		dir := r.dirs[r.rng.Intn(len(r.dirs))]
		path := joinPath(dir, fmt.Sprintf("f%d", r.nextID))
		content := r.content(path)
		err := se.WriteFile(path, content)
		r.log("site %d create %s (%d bytes): %v", site, path, len(content), err)
		r.noteWrite(path, content, err)
	case roll < 55: // overwrite an existing file
		path, ok := r.pickFile()
		if !ok {
			return
		}
		content := r.content(path)
		err := se.WriteFile(path, content)
		r.log("site %d write %s (%d bytes): %v", site, path, len(content), err)
		r.noteWrite(path, content, err)
	case roll < 75: // read a file back and check it against the model
		path, ok := r.pickFile()
		if !ok {
			return
		}
		data, err := se.ReadFile(path)
		r.log("site %d read %s: %d bytes, %v", site, path, len(data), err)
		st := r.files[path]
		if err == nil && st != nil && st.exists && !st.dirty && !r.disturbed() &&
			string(data) != string(st.content) {
			r.violate("read %s at site %d returned %d bytes, want %d (stale committed data)",
				path, site, len(data), len(st.content))
		}
	case roll < 85: // mkdir
		r.nextID++
		parent := r.dirs[r.rng.Intn(len(r.dirs))]
		path := joinPath(parent, fmt.Sprintf("d%d", r.nextID))
		err := se.Mkdir(path)
		r.log("site %d mkdir %s: %v", site, path, err)
		if err == nil {
			r.dirs = append(r.dirs, path)
			if r.disturbed() {
				r.dirtyDirs[path] = true
			}
		}
	default: // unlink
		path, ok := r.pickFile()
		if !ok {
			return
		}
		err := se.Unlink(path)
		r.log("site %d unlink %s: %v", site, path, err)
		if st := r.files[path]; st != nil {
			if err == nil {
				st.exists = false
			} else {
				st.dirty = true
			}
		}
	}
}

// content derives a deterministic payload (1..3 pages) for a write.
func (r *run) content(path string) []byte {
	n := 1 + r.rng.Intn(3000)
	line := fmt.Sprintf("%s seed=%d rev=%d\n", path, r.cfg.Seed, r.rng.Uint32())
	return []byte(strings.Repeat(line, 1+n/len(line)))[:n]
}

// pickFile returns a random path the model believes exists.
func (r *run) pickFile() (string, bool) {
	var live []string
	for p, st := range r.files {
		if st.exists {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return "", false
	}
	sort.Strings(live)
	return live[r.rng.Intn(len(live))], true
}

// noteWrite updates the model after a write attempt. A write while the
// cluster is disturbed (partition or crashed site) may race a
// conflicting update elsewhere, so its exact content is no longer
// predicted; a failed write leaves the previous committed state but —
// for typed mid-exchange failures — the outcome is genuinely unknown,
// so the path is marked dirty rather than asserted.
func (r *run) noteWrite(path string, content []byte, err error) {
	st := r.files[path]
	if st == nil {
		st = &fileState{}
		r.files[path] = st
	}
	switch {
	case err == nil:
		st.exists = true
		st.content = content
		st.dirty = st.dirty || r.disturbed()
	case errors.Is(err, netsim.ErrCircuitClosed) || errors.Is(err, netsim.ErrTimeout):
		// May or may not have applied at the storage site.
		st.dirty = true
	}
}

// resolveConflicts resolves every reported conflict by keeping the copy
// at the lowest-numbered holding site, then settles propagation.
func (r *run) resolveConflicts() {
	up := r.upSites()
	if len(up) == 0 {
		return
	}
	rec := r.c.Site(up[0]).Recon
	for pass := 0; pass < 3; pass++ {
		conflicts := rec.ListConflicts()
		if len(conflicts) == 0 {
			return
		}
		for _, cf := range conflicts {
			var sites []locus.SiteID
			for s := range cf.Copies {
				sites = append(sites, s)
			}
			sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
			err := rec.ResolveKeep(cf.ID, sites[0])
			r.log("resolve %v keep site %d: %v", cf.ID, sites[0], err)
		}
		r.c.Settle()
	}
}

// heal ends the run: faults off, every site up, partitions merged,
// conflicts resolved, propagation settled.
func (r *run) heal() {
	if r.faulted {
		r.c.Network().DisableFaults()
		r.faulted = false
		r.log("faults off (final heal)")
	}
	var downs []locus.SiteID
	for id, d := range r.down {
		if d {
			downs = append(downs, id)
		}
	}
	sort.Slice(downs, func(i, j int) bool { return downs[i] < downs[j] })
	for _, id := range downs {
		rep, err := r.c.Restart(id)
		delete(r.down, id)
		r.log("final restart site %d (conflicts=%d, err=%v)", id, rep.ConflictsReported, err)
		if r.plane != nil {
			r.plane.onRestart(id)
		}
	}
	rep, err := r.c.Merge()
	r.parted = false
	r.groups = nil
	r.strandRisk = r.faulted
	r.log("final merge (conflicts=%d, propagated=%d, err=%v)", rep.ConflictsReported, rep.Propagated, err)
	if err != nil {
		r.violate("final merge failed: %v", err)
	}
	r.resolveConflicts()
	if r.plane != nil {
		r.plane.finish()
		r.c.Settle()
	}
	r.c.Settle()
	r.c.Network().Quiesce()
}

// check asserts the global invariants after the final heal.
func (r *run) check() {
	// Deep fsck with convergence: no page leaks, no orphan inodes, no
	// dangling entries, all copies VV-equal with identical bytes, no
	// unresolved conflict flags.
	for _, f := range r.c.Fsck(true) {
		r.violate("fsck: %s", f)
	}

	// Identical directory trees at every site, via the public API.
	trees := make(map[locus.SiteID]string)
	for _, id := range r.c.Sites() {
		trees[id] = r.treeOf(id)
	}
	ref := trees[r.c.Sites()[0]]
	for _, id := range r.c.Sites() {
		if trees[id] != ref {
			r.violate("directory tree at site %d differs from site %d:\n--- site %d\n%s\n--- site %d\n%s",
				id, r.c.Sites()[0], r.c.Sites()[0], ref, id, trees[id])
		}
	}

	// No committed file lost. Files written only under a clean topology
	// must be present with exactly their committed bytes at every site.
	// Files touched while the cluster was disturbed may legitimately
	// have been conflict-renamed ("name!i<inode>") by the §4.4 merge,
	// so for those the path OR a conflict-rename of it must survive —
	// the committed inode must not silently vanish.
	var paths []string
	for p := range r.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		st := r.files[p]
		if !st.exists {
			continue
		}
		for _, id := range r.c.Sites() {
			se := r.c.Site(id).Login("checker")
			data, err := se.ReadFile(p)
			if err == nil {
				if !st.dirty && !r.underDirtyDir(p) && string(data) != string(st.content) {
					r.violate("committed file %s at site %d has %d bytes, want %d",
						p, id, len(data), len(st.content))
				}
				continue
			}
			if st.dirty || r.underDirtyDir(p) {
				if !r.conflictRenamed(se, p) {
					r.violate("committed file %s lost at site %d: %v (and no conflict-rename survives)", p, id, err)
				}
				continue
			}
			r.violate("committed file %s lost at site %d: %v", p, id, err)
		}
	}

	// No partial transaction effects: content written only inside an
	// aborted (sub)transaction must not survive anywhere. Empty husks are
	// tolerated — a crash discards the volatile undo log, so an unlink of
	// a created-then-aborted file can be lost — but the aborted bytes
	// themselves surviving means the abort leaked a write (§ nested
	// transactions, exactly-once abort).
	if r.plane != nil {
		var apaths []string
		for p := range r.plane.aborted {
			apaths = append(apaths, p)
		}
		sort.Strings(apaths)
		for _, p := range apaths {
			want := r.plane.aborted[p]
			if len(want) == 0 {
				continue
			}
			for _, id := range r.c.Sites() {
				se := r.c.Site(id).Login("checker")
				if data, err := se.ReadFile(p); err == nil && string(data) == string(want) {
					r.violate("aborted transaction content survived at site %d: %s (%d bytes)", id, p, len(want))
				}
			}
		}
	}
}

// underDirtyDir reports whether any ancestor directory of p was created
// while the topology was disturbed (and so may itself have been
// conflict-renamed, making p unresolvable through no fault of p's own).
func (r *run) underDirtyDir(p string) bool {
	for d := range r.dirtyDirs {
		if strings.HasPrefix(p, d+"/") {
			return true
		}
	}
	return false
}

// conflictRenamed reports whether a conflict-rename of path p survives:
// an entry "<base>!i<inode>" in p's parent directory, or the parent
// itself being unresolvable because it was conflict-renamed upstream.
func (r *run) conflictRenamed(se *locus.Session, p string) bool {
	i := strings.LastIndex(p, "/")
	dir, base := p[:i], p[i+1:]
	if dir == "" {
		dir = "/"
	}
	ents, err := se.ReadDir(dir)
	if err != nil {
		// The parent was renamed away; the file is wherever the parent
		// went. Tree equality plus fsck reachability cover it.
		return true
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name, base+"!i") {
			return true
		}
	}
	return false
}

// treeOf renders site id's directory tree (live names with file sizes
// elided) as a canonical string.
func (r *run) treeOf(id locus.SiteID) string {
	se := r.c.Site(id).Login("checker")
	var b strings.Builder
	var walk func(dir string)
	walk = func(dir string) {
		ents, err := se.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(&b, "%s: ERR %v\n", dir, err)
			return
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
		for _, e := range ents {
			p := joinPath(dir, e.Name)
			ino, err := se.Stat(p)
			if err != nil {
				fmt.Fprintf(&b, "%s: stat ERR %v\n", p, err)
				continue
			}
			fmt.Fprintf(&b, "%s type=%v\n", p, ino.Type)
			if ino.Type == storage.TypeDirectory {
				walk(p)
			}
		}
	}
	walk("/")
	return b.String()
}

func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}
