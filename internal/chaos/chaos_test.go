package chaos

import (
	"flag"
	"strconv"
	"testing"
)

// chaosSeeds are the fixed seeds CI runs (`make chaos`). They were
// chosen to exercise all event kinds: each schedule includes
// partitions, merges, crashes, restarts, and fault bursts.
var chaosSeeds = []uint64{1, 7, 11}

var seedFlag = flag.Uint64("chaos.seed", 0, "run a single extra chaos seed (for reproducing failures)")

// TestChaosSeeds runs the fixed CI seeds: with the at-most-once plane
// on, every randomized fault schedule must end with all invariants
// intact. A failure prints the seed and the full schedule replay log.
func TestChaosSeeds(t *testing.T) {
	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmtSeed(seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Seed: seed})
			if err != nil {
				t.Fatalf("chaos run failed to execute: %v", err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("invariants violated:\n%s", res)
			}
			if res.Stats.MsgsDropped == 0 && res.Stats.MsgsDuped == 0 && res.Stats.MsgsDelayed == 0 {
				t.Errorf("seed %d injected no faults (dropped=%d duped=%d delayed=%d); schedule never exercised the fault plane",
					seed, res.Stats.MsgsDropped, res.Stats.MsgsDuped, res.Stats.MsgsDelayed)
			}
		})
	}
}

// TestChaosSerialPullSeeds reruns the fixed seeds with bulk windowed
// propagation disabled (the SerialPull ablation): the legacy
// one-exchange-per-page pull path must uphold the same invariants
// under the same fault schedules. Together with TestChaosSeeds (bulk
// on by default) this keeps both protocol variants chaos-covered.
func TestChaosSerialPullSeeds(t *testing.T) {
	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmtSeed(seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Seed: seed, SerialPull: true})
			if err != nil {
				t.Fatalf("chaos run failed to execute: %v", err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("invariants violated with serial pull:\n%s", res)
			}
		})
	}
}

// TestChaosLeaseSeeds reruns the fixed seeds with the lease/intent
// layer enabled at every site: delegation grants, batched revocations,
// writer-lease recalls, and lease reclaim across crashes, partitions,
// and fault bursts must uphold the same invariants — including the
// fsck stranded-lease check, which fails any run that ends with a
// lease held at a site the CSS no longer tracks.
func TestChaosLeaseSeeds(t *testing.T) {
	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmtSeed(seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Seed: seed, Leases: true})
			if err != nil {
				t.Fatalf("chaos run failed to execute: %v", err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("invariants violated with leases on:\n%s", res)
			}
			if res.Stats.LeasesGranted == 0 {
				t.Errorf("seed %d granted no leases; the schedule never exercised the lease layer", seed)
			}
		})
	}
}

// TestChaosExtraSeed lets a failing seed from anywhere (CI, fuzzing, a
// bug report) be replayed directly:
//
//	go test ./internal/chaos -run ExtraSeed -chaos.seed=123456
func TestChaosExtraSeed(t *testing.T) {
	if *seedFlag == 0 {
		t.Skip("no -chaos.seed given")
	}
	res, err := Run(Config{Seed: *seedFlag})
	if err != nil {
		t.Fatalf("chaos run failed to execute: %v", err)
	}
	t.Logf("%s", res)
	if len(res.Violations) != 0 {
		t.Fatalf("invariants violated:\n%s", res)
	}
}

// TestChaosCatchesDedupRegression deliberately disables the at-most-once
// dedup tables and checks that the harness notices: with message loss
// plus retries, replayed mutations must corrupt at least one fixed-seed
// run (orphan inodes from replayed creates, divergent copies from
// replayed commits). This guards the guard — if this test starts
// passing dedup-off cleanly, the harness has lost its teeth.
func TestChaosCatchesDedupRegression(t *testing.T) {
	caught := 0
	for _, seed := range chaosSeeds {
		res, err := Run(Config{Seed: seed, DisableDedup: true, Drop: 0.15, Dup: 0.10, Delay: 0.10})
		if err != nil {
			t.Fatalf("chaos run failed to execute: %v", err)
		}
		if n := len(res.Violations); n > 0 {
			t.Logf("seed %d: dedup-off caught with %d violation(s), e.g. %s", seed, n, res.Violations[0])
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("disabled dedup produced no invariant violations across seeds %v; the chaos harness is not sensitive enough", chaosSeeds)
	}
}

func fmtSeed(s uint64) string {
	return "seed=" + strconv.FormatUint(s, 10)
}
