package chaos

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// chaosSeeds are the fixed seeds CI runs (`make chaos`). They were
// chosen to exercise all event kinds: each schedule includes
// partitions, merges, crashes, restarts, and fault bursts.
var chaosSeeds = []uint64{1, 7, 11}

// Replay flags: TestChaosExtraSeed rebuilds a Config from these, so
// Result.ReplayCommand round-trips any failing run into one
// copy-pasteable command.
var (
	seedFlag       = flag.Uint64("chaos.seed", 0, "run a single extra chaos seed (for reproducing failures)")
	sitesFlag      = flag.Int("chaos.sites", 0, "cluster size for -chaos.seed (0 = default)")
	stepsFlag      = flag.Int("chaos.steps", 0, "schedule steps for -chaos.seed (0 = default)")
	dropFlag       = flag.Float64("chaos.drop", 0, "fault-burst drop rate for -chaos.seed (0 = default)")
	dupFlag        = flag.Float64("chaos.dup", 0, "fault-burst dup rate for -chaos.seed (0 = default)")
	delayFlag      = flag.Float64("chaos.delay", 0, "fault-burst delay rate for -chaos.seed (0 = default)")
	dedupOffFlag   = flag.Bool("chaos.dedupoff", false, "disable at-most-once dedup for -chaos.seed")
	serialPullFlag = flag.Bool("chaos.serialpull", false, "disable bulk propagation for -chaos.seed")
	leasesFlag     = flag.Bool("chaos.leases", false, "enable the lease layer for -chaos.seed")
	procsFlag      = flag.Bool("chaos.procs", false, "enable the process plane for -chaos.seed")
	workloadFlag   = flag.Bool("chaos.workload", false, "drive the workload engine for -chaos.seed")
)

// reportFailure fails the test with the full replayable report and, when
// CHAOS_ARTIFACT_DIR is set (CI), also writes the report to a file so
// the failing run's op log survives as a build artifact.
func reportFailure(t *testing.T, what string, res *Result) {
	t.Helper()
	if dir := os.Getenv("CHAOS_ARTIFACT_DIR"); dir != "" {
		name := strings.NewReplacer("/", "_", "=", "").Replace(t.Name())
		path := filepath.Join(dir, fmt.Sprintf("chaos-%s-seed%d.log", name, res.Seed))
		if err := os.MkdirAll(dir, 0o755); err == nil {
			_ = os.WriteFile(path, []byte(res.String()), 0o644)
			t.Logf("wrote failing op log to %s", path)
		}
	}
	t.Fatalf("%s:\n%s", what, res)
}

// TestChaosSeeds runs the fixed CI seeds: with the at-most-once plane
// on, every randomized fault schedule must end with all invariants
// intact. A failure prints the seed and the full schedule replay log.
func TestChaosSeeds(t *testing.T) {
	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmtSeed(seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Seed: seed})
			if err != nil {
				t.Fatalf("chaos run failed to execute: %v", err)
			}
			if len(res.Violations) != 0 {
				reportFailure(t, "invariants violated", res)
			}
			if res.Stats.MsgsDropped == 0 && res.Stats.MsgsDuped == 0 && res.Stats.MsgsDelayed == 0 {
				t.Errorf("seed %d injected no faults (dropped=%d duped=%d delayed=%d); schedule never exercised the fault plane",
					seed, res.Stats.MsgsDropped, res.Stats.MsgsDuped, res.Stats.MsgsDelayed)
			}
		})
	}
}

// TestChaosSerialPullSeeds reruns the fixed seeds with bulk windowed
// propagation disabled (the SerialPull ablation): the legacy
// one-exchange-per-page pull path must uphold the same invariants
// under the same fault schedules. Together with TestChaosSeeds (bulk
// on by default) this keeps both protocol variants chaos-covered.
func TestChaosSerialPullSeeds(t *testing.T) {
	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmtSeed(seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Seed: seed, SerialPull: true})
			if err != nil {
				t.Fatalf("chaos run failed to execute: %v", err)
			}
			if len(res.Violations) != 0 {
				reportFailure(t, "invariants violated with serial pull", res)
			}
		})
	}
}

// TestChaosLeaseSeeds reruns the fixed seeds with the lease/intent
// layer enabled at every site: delegation grants, batched revocations,
// writer-lease recalls, and lease reclaim across crashes, partitions,
// and fault bursts must uphold the same invariants — including the
// fsck stranded-lease check, which fails any run that ends with a
// lease held at a site the CSS no longer tracks.
func TestChaosLeaseSeeds(t *testing.T) {
	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmtSeed(seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Seed: seed, Leases: true})
			if err != nil {
				t.Fatalf("chaos run failed to execute: %v", err)
			}
			if len(res.Violations) != 0 {
				reportFailure(t, "invariants violated with leases on", res)
			}
			if res.Stats.LeasesGranted == 0 {
				t.Errorf("seed %d granted no leases; the schedule never exercised the lease layer", seed)
			}
		})
	}
}

// TestChaosProcSeeds reruns the fixed seeds with the process plane on:
// remote run, cross-site signals, named pipes spanning sites,
// migration, and nested transactions interleave with the same topology
// schedule, and the §5.6 failure-action checker must find every
// prescribed outcome delivered (error to caller, EOF not hang,
// exactly-once abort, queued-signal replay).
func TestChaosProcSeeds(t *testing.T) {
	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmtSeed(seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Seed: seed, Procs: true})
			if err != nil {
				t.Fatalf("chaos run failed to execute: %v", err)
			}
			if len(res.Violations) != 0 {
				reportFailure(t, "§5.6 checker violated", res)
			}
			procOps := 0
			for _, line := range res.Schedule {
				if strings.HasPrefix(line, "proc ") {
					procOps++
				}
			}
			if procOps == 0 {
				t.Errorf("seed %d ran no process-plane ops; the schedule never exercised the §5.6 checker", seed)
			}
		})
	}
}

// TestChaosWorkloadSeeds reruns the fixed seeds with the multi-tenant
// workload engine driving a share of the schedule AND the process
// plane on: Zipf reads through the pooled page path, zero-copy write
// casts, and build-style rename cycles interleave with partitions,
// crashes, fault bursts, and §5.6 process failures. Every global
// invariant and every §5.6 failure action must still hold — this is
// the regression net proving the perf machinery (page pooling,
// zero-copy payloads, batched delivery, directory cache) does not
// trade correctness for speed.
func TestChaosWorkloadSeeds(t *testing.T) {
	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmtSeed(seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Seed: seed, Workload: true, Procs: true})
			if err != nil {
				t.Fatalf("chaos run failed to execute: %v", err)
			}
			if len(res.Violations) != 0 {
				reportFailure(t, "invariants violated under workload schedule", res)
			}
			engineSteps := 0
			for _, line := range res.Schedule {
				if strings.HasPrefix(line, "workload engine step") {
					engineSteps++
				}
			}
			if engineSteps == 0 {
				t.Errorf("seed %d ran no workload engine steps; the toggle never engaged", seed)
			}
		})
	}
}

// TestChaosProcReplayDeterminism runs the same proc-plane seed twice
// and requires byte-identical schedules: the replay command printed on
// failure is only useful if the schedule really is a pure function of
// the seed, async Wait completions and all.
func TestChaosProcReplayDeterminism(t *testing.T) {
	run1, err := Run(Config{Seed: chaosSeeds[0], Procs: true})
	if err != nil {
		t.Fatalf("chaos run failed to execute: %v", err)
	}
	run2, err := Run(Config{Seed: chaosSeeds[0], Procs: true})
	if err != nil {
		t.Fatalf("chaos run failed to execute: %v", err)
	}
	if len(run1.Schedule) != len(run2.Schedule) {
		t.Fatalf("schedule lengths differ across replays: %d vs %d", len(run1.Schedule), len(run2.Schedule))
	}
	for i := range run1.Schedule {
		if run1.Schedule[i] != run2.Schedule[i] {
			t.Fatalf("schedule diverges at step %d:\n  first:  %s\n  replay: %s",
				i, run1.Schedule[i], run2.Schedule[i])
		}
	}
}

// TestChaosExtraSeed lets a failing seed from anywhere (CI, fuzzing, a
// bug report) be replayed directly; the -chaos.* flags restore the
// exact Config, so Result.ReplayCommand round-trips:
//
//	go test ./internal/chaos -run ExtraSeed -chaos.seed=123456 -chaos.procs
func TestChaosExtraSeed(t *testing.T) {
	if *seedFlag == 0 {
		t.Skip("no -chaos.seed given")
	}
	res, err := Run(Config{
		Seed:         *seedFlag,
		Sites:        *sitesFlag,
		Steps:        *stepsFlag,
		Drop:         *dropFlag,
		Dup:          *dupFlag,
		Delay:        *delayFlag,
		DisableDedup: *dedupOffFlag,
		SerialPull:   *serialPullFlag,
		Leases:       *leasesFlag,
		Procs:        *procsFlag,
		Workload:     *workloadFlag,
	})
	if err != nil {
		t.Fatalf("chaos run failed to execute: %v", err)
	}
	t.Logf("%s", res)
	if len(res.Violations) != 0 {
		reportFailure(t, "invariants violated", res)
	}
}

// TestChaosCatchesDedupRegression deliberately disables the at-most-once
// dedup tables and checks that the harness notices: with message loss
// plus retries, replayed mutations must corrupt at least one fixed-seed
// run (orphan inodes from replayed creates, divergent copies from
// replayed commits). This guards the guard — if this test starts
// passing dedup-off cleanly, the harness has lost its teeth.
func TestChaosCatchesDedupRegression(t *testing.T) {
	caught := 0
	for _, seed := range chaosSeeds {
		res, err := Run(Config{Seed: seed, DisableDedup: true, Drop: 0.15, Dup: 0.10, Delay: 0.10})
		if err != nil {
			t.Fatalf("chaos run failed to execute: %v", err)
		}
		if n := len(res.Violations); n > 0 {
			t.Logf("seed %d: dedup-off caught with %d violation(s), e.g. %s", seed, n, res.Violations[0])
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("disabled dedup produced no invariant violations across seeds %v; the chaos harness is not sensitive enough", chaosSeeds)
	}
}

func fmtSeed(s uint64) string {
	return "seed=" + strconv.FormatUint(s, 10)
}
