package recon

import (
	"errors"
	"fmt"

	"repro/internal/format"
	"repro/internal/fs"
	"repro/internal/storage"
)

// Mail support: LOCUS notifies users of reconciliation actions "by
// sending the user electronic mail" (§4.5), and mailboxes are
// first-class typed files the recovery system merges automatically.
// Mailboxes live at /var/mail/<user> in the default "multiple messages
// in a single file" format.

// MailboxPath returns the mailbox path for a user.
func MailboxPath(user string) string { return "/var/mail/" + user }

func (r *Reconciler) sysCred() *fs.Cred { return fs.DefaultCred("locus-recovery") }

// EnsureMailbox creates /var, /var/mail and the user's mailbox file if
// missing.
func (r *Reconciler) EnsureMailbox(user string) error {
	k := r.k
	cred := r.sysCred()
	for _, dir := range []string{"/var", "/var/mail"} {
		if _, err := k.Stat(cred, dir); errors.Is(err, fs.ErrNotFound) {
			if err := k.Mkdir(cred, dir, 0755); err != nil && !errors.Is(err, fs.ErrExists) {
				return err
			}
		} else if err != nil {
			return err
		}
	}
	path := MailboxPath(user)
	if _, err := k.Stat(cred, path); errors.Is(err, fs.ErrNotFound) {
		f, err := k.Create(&fs.Cred{User: user}, path, storage.TypeMailbox, 0600)
		if err != nil && !errors.Is(err, fs.ErrExists) {
			return err
		}
		if err == nil {
			return f.Close()
		}
	} else if err != nil {
		return err
	}
	return nil
}

// DeliverMail appends a message to the user's mailbox. Message IDs are
// "<site>-<seq>", globally unique, which is what makes mailbox merge
// conflict-free (§4.5).
func (r *Reconciler) DeliverMail(user, from, body string) error {
	if err := r.EnsureMailbox(user); err != nil {
		return err
	}
	k := r.k
	f, err := k.Open(r.sysCred(), MailboxPath(user), fs.ModeModify)
	if err != nil {
		return err
	}
	defer f.Close() //locus:vet-allow uncheckedcall commit below is the durability point
	raw, err := f.ReadAll()
	if err != nil {
		return err
	}
	mb, err := format.DecodeMailbox(raw)
	if err != nil {
		return err
	}
	mb.Deliver(format.Message{
		ID:   fmt.Sprintf("%d-%d", k.Site(), r.mailSeq.Add(1)),
		From: from,
		Body: body,
	})
	if err := f.WriteAll(format.EncodeMailbox(mb)); err != nil {
		return err
	}
	return f.Commit()
}

// DeleteMail tombstones a message in the user's mailbox.
func (r *Reconciler) DeleteMail(user, id string) error {
	k := r.k
	f, err := k.Open(r.sysCred(), MailboxPath(user), fs.ModeModify)
	if err != nil {
		return err
	}
	defer f.Close() //locus:vet-allow uncheckedcall commit below
	raw, err := f.ReadAll()
	if err != nil {
		return err
	}
	mb, err := format.DecodeMailbox(raw)
	if err != nil {
		return err
	}
	if !mb.Delete(id) {
		return fmt.Errorf("recon: no live message %q in %s", id, MailboxPath(user))
	}
	if err := f.WriteAll(format.EncodeMailbox(mb)); err != nil {
		return err
	}
	return f.Commit()
}

// ReadMail returns the live messages in the user's mailbox (empty if
// the mailbox does not exist).
func (r *Reconciler) ReadMail(user string) ([]format.Message, error) {
	k := r.k
	f, err := k.Open(r.sysCred(), MailboxPath(user), fs.ModeRead)
	if errors.Is(err, fs.ErrNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close() //locus:vet-allow uncheckedcall read-only
	raw, err := f.ReadAll()
	if err != nil {
		return nil, err
	}
	mb, err := format.DecodeMailbox(raw)
	if err != nil {
		return nil, err
	}
	return mb.Live(), nil
}
