package recon

import (
	"fmt"
	"sort"

	"repro/internal/fs"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// Manual conflict resolution (§4.6): "files with unresolved conflicts
// are marked so normal attempts to access them fail, although that
// control may be overridden. A trivial tool is provided by which the
// user may rename each version of the conflicted file and make each one
// a normal file again."

// Conflict describes one unresolved conflicted file visible from this
// site.
type Conflict struct {
	ID    storage.FileID
	Owner string
	Type  storage.FileType
	// Copies maps each pack site in the partition to its copy's
	// version vector.
	Copies map[SiteID]vclock.VV
}

// ListConflicts scans the filegroups this site stores for files marked
// in conflict and gathers the divergent vectors across the partition.
func (r *Reconciler) ListConflicts() []Conflict {
	k := r.k
	seen := map[storage.FileID]*Conflict{}
	for _, fg := range k.Store().Filegroups() {
		d, ok := k.Config().FG(fg)
		if !ok {
			continue
		}
		for _, p := range d.Packs {
			sums, err := k.ListInodesAt(p.Site, fg)
			if err != nil {
				continue
			}
			for _, s := range sums {
				if !s.Conflict {
					continue
				}
				id := storage.FileID{FG: fg, Inode: s.Num}
				c := seen[id]
				if c == nil {
					c = &Conflict{ID: id, Owner: s.Owner, Type: s.Type, Copies: map[SiteID]vclock.VV{}}
					seen[id] = c
				}
				c.Copies[p.Site] = s.VV
			}
		}
	}
	out := make([]Conflict, 0, len(seen))
	for _, c := range seen {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.FG != out[j].ID.FG {
			return out[i].ID.FG < out[j].ID.FG
		}
		return out[i].ID.Inode < out[j].ID.Inode
	})
	return out
}

// ResolveKeep resolves a conflict by declaring the copy at winner the
// surviving version; every pack converges to it with a vector
// dominating all copies.
func (r *Reconciler) ResolveKeep(id storage.FileID, winner SiteID) error {
	stores := r.storesOf(id)
	if len(stores) == 0 {
		return fmt.Errorf("recon: no copies of %v reachable", id)
	}
	copies, err := r.fetchCopies(id, stores)
	if err != nil {
		return err
	}
	var chosen *Copy
	for i := range copies {
		if copies[i].Site == winner {
			chosen = &copies[i]
		}
	}
	if chosen == nil {
		return fmt.Errorf("recon: site %d holds no copy of %v", winner, id)
	}
	if err := r.commitMerged(id, copies, chosen.Content, chosen.Inode); err != nil {
		return err
	}
	if !chosen.Inode.Deleted {
		// If the conflict involved a delete/update race, the surviving
		// file's directory entry may have converged to the tombstone;
		// restore the link.
		r.relinkResurrected(id)
	}
	return nil
}

// ResolveSplit resolves a conflict by materializing every divergent
// copy as an ordinary file named <path>!s<site>, then removing the
// conflicted original. The user can compare and merge with standard
// tools afterwards.
func (r *Reconciler) ResolveSplit(cred *fs.Cred, path string) ([]string, error) {
	k := r.k
	res, err := k.Resolve(cred, path)
	if err != nil {
		return nil, err
	}
	stores := r.storesOf(res.ID)
	copies, err := r.fetchCopies(res.ID, stores)
	if err != nil {
		return nil, err
	}
	// Materialize every divergent copy under an altered name.
	var names []string
	for _, c := range copies {
		name := fmt.Sprintf("%s!s%d", path, c.Site)
		f, err := k.Create(cred, name, c.Inode.Type, c.Inode.Mode)
		if err != nil {
			return names, err
		}
		if len(c.Content) > 0 {
			if err := f.WriteAll(c.Content); err != nil {
				f.Close() //locus:vet-allow uncheckedcall abandoning
				return names, err
			}
		}
		if err := f.Close(); err != nil {
			return names, err
		}
		names = append(names, name)
	}
	// Clear the conflict by installing one copy as a dominating normal
	// version, then remove the original through the ordinary unlink
	// path.
	if err := r.ResolveKeep(res.ID, copies[0].Site); err != nil {
		return names, err
	}
	if err := k.Unlink(cred, path); err != nil {
		return names, err
	}
	return names, nil
}

// storesOf lists the pack sites in the partition holding a copy.
func (r *Reconciler) storesOf(id storage.FileID) []SiteID {
	k := r.k
	var out []SiteID
	d, ok := k.Config().FG(id.FG)
	if !ok {
		return nil
	}
	part := map[SiteID]bool{}
	for _, s := range k.Partition() {
		part[s] = true
	}
	for _, p := range d.Packs {
		if !part[p.Site] {
			continue
		}
		sums, err := k.ListInodesAt(p.Site, id.FG)
		if err != nil {
			continue
		}
		for _, s := range sums {
			if s.Num == id.Inode && !s.Deleted {
				out = append(out, p.Site)
			}
		}
	}
	return out
}
