package recon_test

import (
	"errors"
	"testing"

	"repro/internal/fs"
)

func TestDemandReconcileDirectory(t *testing.T) {
	// §4.4: "we support demand recovery ... a particular directory can
	// be reconciled out of order to allow access to it with only a
	// small delay". A user needing /hot after a merge reconciles just
	// that directory, without waiting for the full sweep.
	h := newHarness(t, 2)
	if err := h.c.K(1).Mkdir(cred(), "/hot", 0755); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	write(t, h.c.K(1), "/hot/from1", "a")
	write(t, h.c.K(2), "/hot/from2", "b")

	// Heal the network but do NOT run the full reconciliation sweep.
	h.c.Heal()
	h.c.Settle()

	// Demand-reconcile just /hot from site 1.
	r, err := h.c.K(1).Resolve(cred(), "/hot")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.recs[1].DemandReconcile(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DirsMerged != 1 {
		t.Fatalf("report %+v, want 1 directory merged", rep)
	}
	h.c.Settle()

	ents := dirNames(t, h.c.K(2), "/hot")
	if len(ents) != 2 {
		t.Fatalf("after demand recovery /hot = %v", ents)
	}
}

func TestDemandReconcileNoopWhenConsistent(t *testing.T) {
	h := newHarness(t, 2)
	write(t, h.c.K(1), "/f", "same")
	h.c.Settle()
	r, err := h.c.K(1).Resolve(cred(), "/f")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.recs[1].DemandReconcile(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DirsMerged+rep.Propagated+rep.ConflictsReported != 0 {
		t.Fatalf("consistent file produced work: %+v", rep)
	}
}

func TestDemandReconcilePathStaleCopy(t *testing.T) {
	// A stale (dominated) replica is brought current on demand.
	h := newHarness(t, 2)
	write(t, h.c.K(1), "/f", "v1")
	h.c.Settle()
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	update(t, h.c.K(1), "/f", "v2")
	h.c.Heal()
	// No sweep; demand only.
	rep, err := h.recs[2].DemandReconcilePath(cred(), "/f")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Propagated != 1 {
		t.Fatalf("report %+v, want 1 propagation", rep)
	}
	if got := read(t, h.c.K(2), "/f"); got != "v2" {
		t.Fatalf("after demand recovery site 2 reads %q", got)
	}
}

func TestDemandReconcileMissingPath(t *testing.T) {
	h := newHarness(t, 2)
	if _, err := h.recs[1].DemandReconcilePath(cred(), "/nope"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}
