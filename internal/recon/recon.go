// Package recon implements the LOCUS recovery and merge machinery of
// §4: detection of conflicting updates via version vectors, automatic
// hierarchical reconciliation of directories (§4.4) and mailboxes
// (§4.5), electronic-mail notification and access blocking for
// conflicts the system cannot resolve (§4.6), and the interactive
// resolution tool.
//
// The philosophy is hierarchical (§4.3): the basic system detects all
// conflicts; for types it manages (directories, mailboxes) it merges
// automatically; database types are reported to a registered
// recovery/merge manager; everything else is reported to the owner.
package recon

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fs"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// SiteID aliases the shared site identifier.
type SiteID = fs.SiteID

// MergeManager is a registered recovery/merge manager for a file type
// the basic system does not understand (the paper's example is a
// database manager, §4.1). It returns the merged content, or an error
// to fall back to owner notification.
type MergeManager func(id storage.FileID, copies []Copy) ([]byte, error)

// Copy is one pack's version of a file during reconciliation.
type Copy struct {
	Site    SiteID
	Inode   *storage.Inode
	Content []byte
}

// Report summarizes one reconciliation pass.
type Report struct {
	// DirsMerged counts directories automatically reconciled.
	DirsMerged int
	// MailboxesMerged counts mailboxes automatically reconciled.
	MailboxesMerged int
	// ManagerMerged counts files merged by a registered merge manager.
	ManagerMerged int
	// ConflictsReported counts files left marked in conflict with the
	// owner notified by mail.
	ConflictsReported int
	// Propagated counts stale copies scheduled for ordinary
	// propagation (no conflict, one copy simply newer).
	Propagated int
	// NameConflicts counts directory entries renamed apart.
	NameConflicts int
	// DeletesUndone counts delete/modify races resolved by undoing the
	// delete (rule d of §4.4).
	DeletesUndone int
}

// Reconciler drives reconciliation for one site's kernel.
type Reconciler struct {
	k        *fs.Kernel
	managers map[storage.FileType]MergeManager
	mailSeq  atomic.Int64

	mu     sync.Mutex
	outbox []queuedMail
}

type queuedMail struct{ user, from, body string }

// New creates a reconciler bound to a kernel and installs the kernel's
// conflict-mail hook to deliver into LOCUS mailboxes.
func New(k *fs.Kernel) *Reconciler {
	r := &Reconciler{k: k, managers: make(map[storage.FileType]MergeManager)}
	k.SetMailer(func(user, subject, body string) {
		r.queueMail(user, "locus-recovery", subject+"\n"+body)
	})
	return r
}

// queueMail defers a notification until the current reconciliation pass
// finishes: delivering mid-pass would mutate the very directories being
// merged.
func (r *Reconciler) queueMail(user, from, body string) {
	r.mu.Lock()
	r.outbox = append(r.outbox, queuedMail{user, from, body})
	r.mu.Unlock()
}

// FlushMail delivers all queued notifications.
func (r *Reconciler) FlushMail() {
	r.mu.Lock()
	out := r.outbox
	r.outbox = nil
	r.mu.Unlock()
	for _, m := range out {
		r.DeliverMail(m.user, m.from, m.body) // error unchecked by design: best-effort notification
	}
}

// RegisterManager installs a recovery/merge manager for a file type
// (§4.3: "it reflects the problem up to a higher level; to a
// recovery/merge manager if one exists for the given file type").
func (r *Reconciler) RegisterManager(t storage.FileType, m MergeManager) {
	r.managers[t] = m
}

// executor reports whether this site is responsible for reconciling the
// given file: the lowest pack site in the partition that stores a copy.
// Running the pass at every site performs each merge exactly once.
func (r *Reconciler) executor(stores []SiteID) bool {
	me := r.k.Site()
	low := SiteID(0)
	for _, s := range stores {
		if low == 0 || s < low {
			low = s
		}
	}
	return low == me
}

// ReconcileFilegroup runs the recovery procedure for one filegroup
// within the current partition: enumerate every pack's inodes, compare
// version vectors, and resolve each file according to its type. It is
// run after the merge protocol establishes a new partition ("the
// recovery procedure corrects any inconsistencies brought about either
// by the reconfiguration code itself, or by activity while the network
// was not connected" — §5.3).
func (r *Reconciler) ReconcileFilegroup(fg storage.FilegroupID) (Report, error) {
	var rep Report
	k := r.k

	// Gather each reachable pack's inode lists.
	type packList struct {
		site   SiteID
		byNum  map[storage.InodeNum]fs.InodeSummary
		inPart bool
	}
	var packs []packList
	d, ok := k.Config().FG(fg)
	if !ok {
		return rep, fmt.Errorf("recon: unknown filegroup %d", fg)
	}
	part := make(map[SiteID]bool)
	for _, s := range k.Partition() {
		part[s] = true
	}
	for _, p := range d.Packs {
		if !part[p.Site] {
			continue
		}
		list, err := k.ListInodesAt(p.Site, fg)
		if err != nil {
			continue // pack became unreachable; next merge retries
		}
		pl := packList{site: p.Site, byNum: make(map[storage.InodeNum]fs.InodeSummary), inPart: true}
		for _, s := range list {
			pl.byNum[s.Num] = s
		}
		packs = append(packs, pl)
	}
	if len(packs) < 2 {
		return rep, nil // nothing to compare against
	}

	// Collect the union of inode numbers.
	numSet := make(map[storage.InodeNum]bool)
	for _, p := range packs {
		for n := range p.byNum {
			numSet[n] = true
		}
	}
	nums := make([]storage.InodeNum, 0, len(numSet))
	for n := range numSet {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })

	for _, num := range nums {
		id := storage.FileID{FG: fg, Inode: num}
		// Which packs store it, and are the copies consistent?
		var stores []SiteID
		var sums []fs.InodeSummary
		for _, p := range packs {
			if s, ok := p.byNum[num]; ok {
				stores = append(stores, p.site)
				sums = append(sums, s)
			}
		}
		best := 0
		conflict := false
		for i := 1; i < len(sums); i++ {
			switch sums[i].VV.Compare(sums[best].VV) {
			case vclock.Dominates:
				best = i
			case vclock.Concurrent:
				conflict = true
			}
		}
		if conflict {
			// Re-check against the best copy: some copies may be
			// dominated by best even though pairwise concurrency was
			// seen along the way.
			conflict = false
			for i := range sums {
				if sums[i].VV.Concurrent(sums[best].VV) {
					conflict = true
					break
				}
			}
		}
		allEqual := true
		for i := range sums {
			if !sums[i].VV.Equal(sums[0].VV) {
				allEqual = false
				break
			}
		}
		// Directories run the rule-based merge whenever their vectors
		// differ at all — §4.4: "no recovery is needed if the version
		// vector for both copies of the directory are identical.
		// Otherwise the basic rules are ..." — because a dominating
		// copy may carry an entry delete that races a modification of
		// the *file's* data done in the other partition (rule d).
		dirTyped := sums[best].Type == storage.TypeDirectory || sums[best].Type == storage.TypeHiddenDir
		if dirTyped && !allEqual && !sums[best].Deleted {
			if !r.executor(stores) {
				continue
			}
			if err := r.resolveConflict(id, stores, sums, &rep); err != nil {
				return rep, err
			}
			continue
		}
		if !conflict {
			// At most stale copies: schedule ordinary propagation from
			// the dominant copy.
			if !r.executor(stores) {
				continue
			}
			// Targets: packs storing a stale copy, plus packs listed in
			// the file's storage-site list that missed the create
			// entirely while partitioned.
			targets := append([]SiteID(nil), stores...)
			for _, s := range sums[best].Sites {
				if part[s] && !containsSite(targets, s) {
					targets = append(targets, s)
				}
			}
			moved := len(targets) > len(stores)
			for i := range sums {
				if i != best && !sums[i].VV.Equal(sums[best].VV) {
					moved = true
				}
			}
			if moved {
				k.SchedulePullAt(targets, id, sums[best].VV, stores[best])
				rep.Propagated++
			}
			continue
		}

		if !r.executor(stores) {
			continue
		}
		// Already-marked conflicts were reported in an earlier pass and
		// await the resolution tool; do not re-report.
		allMarked := true
		for i := range sums {
			if !sums[i].Conflict {
				allMarked = false
				break
			}
		}
		if allMarked {
			continue
		}
		if err := r.resolveConflict(id, stores, sums, &rep); err != nil {
			return rep, err
		}
	}
	r.FlushMail()
	return rep, nil
}

// DemandReconcile reconciles a single file out of order so a user
// request blocked on it proceeds "with only a small delay" (§4.4:
// "we support demand recovery ... a particular directory can be
// reconciled out of order to allow access to it"). It returns the
// report of the one merge (or propagation) performed.
func (r *Reconciler) DemandReconcile(id storage.FileID) (Report, error) {
	var rep Report
	k := r.k
	sums := k.ProbeAll(id)
	if len(sums) < 2 {
		return rep, nil
	}
	var stores []SiteID
	var list []fs.InodeSummary
	for _, s := range sums {
		stores = append(stores, s.Site)
		list = append(list, s)
	}
	sort.Slice(stores, func(i, j int) bool { return stores[i] < stores[j] })
	sort.Slice(list, func(i, j int) bool { return list[i].Site < list[j].Site })

	best := 0
	conflict := false
	for i := 1; i < len(list); i++ {
		switch list[i].VV.Compare(list[best].VV) {
		case vclock.Dominates:
			best = i
		case vclock.Concurrent:
			conflict = true
		}
	}
	allEqual := true
	for i := range list {
		if !list[i].VV.Equal(list[0].VV) {
			allEqual = false
		}
	}
	if allEqual {
		return rep, nil
	}
	dirTyped := list[best].Type == storage.TypeDirectory || list[best].Type == storage.TypeHiddenDir
	if !conflict && !dirTyped {
		k.SchedulePullAt(stores, id, list[best].VV, list[best].Site)
		k.DrainPropagation()
		rep.Propagated++
		return rep, nil
	}
	err := r.resolveConflict(id, stores, list, &rep)
	r.FlushMail()
	return rep, err
}

// DemandReconcilePath reconciles the file a path names (resolving the
// path tolerates the conflict marking).
func (r *Reconciler) DemandReconcilePath(cred *fs.Cred, path string) (Report, error) {
	res, err := r.k.Resolve(cred, path)
	if err != nil {
		return Report{}, err
	}
	return r.DemandReconcile(res.ID)
}

// ReconcileAll runs ReconcileFilegroup for every filegroup this site
// stores a pack of.
func (r *Reconciler) ReconcileAll() (Report, error) {
	var total Report
	for _, fg := range r.k.Store().Filegroups() {
		rep, err := r.ReconcileFilegroup(fg)
		total.DirsMerged += rep.DirsMerged
		total.MailboxesMerged += rep.MailboxesMerged
		total.ManagerMerged += rep.ManagerMerged
		total.ConflictsReported += rep.ConflictsReported
		total.Propagated += rep.Propagated
		total.NameConflicts += rep.NameConflicts
		total.DeletesUndone += rep.DeletesUndone
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func containsSite(set []SiteID, s SiteID) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}

// resolveConflict dispatches on file type (§4.3's type table).
func (r *Reconciler) resolveConflict(id storage.FileID, stores []SiteID, sums []fs.InodeSummary, rep *Report) error {
	copies, err := r.fetchCopies(id, stores)
	if err != nil {
		return err
	}
	// Delete/modify races on the file itself (§4.4 rationale b: "a file
	// which was deleted in one partition while it was modified in
	// another, wants to be saved"): if exactly one live lineage
	// diverged from tombstones, resurrect it.
	var live []Copy
	for _, c := range copies {
		if !c.Inode.Deleted {
			live = append(live, c)
		}
	}
	if len(live) > 0 && len(live) < len(copies) {
		best := 0
		trueConflict := false
		for i := 1; i < len(live); i++ {
			switch live[i].Inode.VV.Compare(live[best].Inode.VV) {
			case vclock.Dominates:
				best = i
			case vclock.Concurrent:
				trueConflict = true
			}
		}
		if !trueConflict {
			if err := r.commitMerged(id, copies, live[best].Content, live[best].Inode); err != nil {
				return err
			}
			rep.DeletesUndone++
			// The directory copies may already agree on the tombstone
			// (a stalled propagation can deliver the deleting
			// partition's directory before this comparison ran), in
			// which case no directory merge will restore the name.
			r.relinkResurrected(id)
			return nil
		}
	}
	if len(live) == 0 {
		// Tombstones with divergent vectors: unify them.
		tomb := copies[0].Inode.Clone()
		tomb.Deleted = true
		if err := r.commitMerged(id, copies, nil, tomb); err != nil {
			return err
		}
		return nil
	}

	typ := live[0].Inode.Type
	switch typ {
	case storage.TypeDirectory, storage.TypeHiddenDir:
		return r.mergeDirectories(id, copies, rep)
	case storage.TypeMailbox:
		return r.mergeMailboxes(id, copies, rep)
	default:
		if m, ok := r.managers[typ]; ok {
			if merged, err := m(id, copies); err == nil {
				if err := r.commitMerged(id, copies, merged, nil); err != nil {
					return err
				}
				rep.ManagerMerged++
				return nil
			}
		}
		// Untyped (or manager failed): mark all copies in conflict and
		// mail the owner.
		r.k.MarkConflict(id, stores)
		owner := copies[0].Inode.Owner
		r.queueMail(owner, "locus-recovery",
			fmt.Sprintf("conflict: file %v has %d divergent copies (sites %v); use the resolution tool", id, len(copies), stores))
		rep.ConflictsReported++
		return nil
	}
}

func (r *Reconciler) fetchCopies(id storage.FileID, stores []SiteID) ([]Copy, error) {
	var out []Copy
	for _, s := range stores {
		ino, content, err := r.k.FetchCopyFrom(s, id)
		if err != nil {
			continue
		}
		out = append(out, Copy{Site: s, Inode: ino, Content: content})
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("recon: could not fetch enough copies of %v", id)
	}
	return out, nil
}

// commitMerged installs merged content with a vector that dominates all
// inputs (their merge, bumped at this site) so every pack accepts it as
// strictly newer.
func (r *Reconciler) commitMerged(id storage.FileID, copies []Copy, content []byte, meta *storage.Inode) error {
	base := meta
	if base == nil {
		base = copies[0].Inode
	}
	merged := base.Clone()
	vv := vclock.New()
	for _, c := range copies {
		vv = vv.Merge(c.Inode.VV)
	}
	merged.VV = vv.Bump(r.k.Site())
	merged.Deleted = base.Deleted
	merged.Conflict = false
	return r.k.ReconcileCommit(id, merged, content)
}
