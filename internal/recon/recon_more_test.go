package recon_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/fs"
	"repro/internal/recon"
	"repro/internal/storage"
)

// TestPropertyRandomDivergenceConverges drives random partitioned
// activity (creates, updates, deletes) and checks the invariant the
// paper's recovery design promises: after merge + reconciliation, all
// packs hold identical directory contents and every surviving file is
// identical everywhere or consistently marked in conflict.
func TestPropertyRandomDivergenceConverges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := cluster.Simple(2)
		defer c.Close()
		recs := map[fs.SiteID]*recon.Reconciler{
			1: recon.New(c.K(1)), 2: recon.New(c.K(2)),
		}
		sessions := map[fs.SiteID]*fs.Cred{1: fs.DefaultCred("u"), 2: fs.DefaultCred("u")}

		// Shared base files.
		names := []string{"a", "b", "c", "d"}
		for _, n := range names {
			f, err := c.K(1).Create(sessions[1], "/"+n, storage.TypeRegular, 0644)
			if err != nil {
				return false
			}
			if err := f.WriteAll([]byte("base " + n)); err != nil {
				return false
			}
			if err := f.Close(); err != nil {
				return false
			}
		}
		c.Settle()
		c.Partition([]fs.SiteID{1}, []fs.SiteID{2})

		// Random independent activity in each partition.
		for _, site := range []fs.SiteID{1, 2} {
			k := c.K(site)
			for op := 0; op < 4; op++ {
				switch r.Intn(3) {
				case 0: // create a unique name
					name := fmt.Sprintf("/p%d-%d", site, op)
					if f, err := k.Create(sessions[site], name, storage.TypeRegular, 0644); err == nil {
						f.WriteAll([]byte(name)) //nolint:errcheck
						f.Close()                //nolint:errcheck
					}
				case 1: // update a shared file
					name := "/" + names[r.Intn(len(names))]
					if f, err := k.Open(sessions[site], name, fs.ModeModify); err == nil {
						f.WriteAll([]byte(fmt.Sprintf("upd@%d", site))) //nolint:errcheck
						f.Close()                                       //nolint:errcheck
					}
				case 2: // delete a shared file
					k.Unlink(sessions[site], "/"+names[r.Intn(len(names))]) //nolint:errcheck
				}
			}
		}

		// Merge + reconcile (twice, as Merge does).
		c.Heal()
		c.Settle()
		for pass := 0; pass < 2; pass++ {
			for _, s := range []fs.SiteID{1, 2} {
				if _, err := recs[s].ReconcileAll(); err != nil {
					return false
				}
			}
			c.Settle()
		}

		// Invariant 1: identical root listings.
		l1 := listNames(c.K(1))
		l2 := listNames(c.K(2))
		if strings.Join(l1, ",") != strings.Join(l2, ",") {
			t.Logf("seed %d: listings diverge: %v vs %v", seed, l1, l2)
			return false
		}
		// Invariant 2: every pack pair for every inode is equal or
		// consistently conflict-marked.
		s1, _ := c.K(1).ListInodesAt(1, 1)
		byNum := map[storage.InodeNum]fs.InodeSummary{}
		for _, s := range s1 {
			byNum[s.Num] = s
		}
		s2, _ := c.K(1).ListInodesAt(2, 1)
		for _, b := range s2 {
			a, ok := byNum[b.Num]
			if !ok {
				continue
			}
			if a.Conflict != b.Conflict {
				t.Logf("seed %d: conflict marks differ for %d", seed, b.Num)
				return false
			}
			if !a.Conflict && !a.Deleted && !b.Deleted && !a.VV.Equal(b.VV) {
				t.Logf("seed %d: inode %d vectors %v vs %v", seed, b.Num, a.VV, b.VV)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func listNames(k *fs.Kernel) []string {
	ents, err := k.ReadDir(fs.DefaultCred("u"), "/")
	if err != nil {
		return []string{"ERR:" + err.Error()}
	}
	var out []string
	for _, e := range ents {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

func TestHiddenDirectoryMerge(t *testing.T) {
	// Hidden directories merge with the same rules as ordinary ones.
	h := newHarness(t, 2)
	k1 := h.c.K(1)
	if err := k1.MkHidden(cred(), "/cmd", 0755); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	write(t, h.c.K(1), "/cmd@@/vax", "vax module")
	write(t, h.c.K(2), "/cmd@@/pdp11", "pdp module")
	h.mergeAll(t)
	ents, err := k1.ReadDir(cred(), "/cmd@@")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("hidden dir after merge: %+v", ents)
	}
	// Context resolution works on both sides.
	vax := &fs.Cred{User: "u", HiddenCtx: []string{"vax"}}
	if got := readWith(t, h.c.K(2), vax, "/cmd"); got != "vax module" {
		t.Fatalf("read %q", got)
	}
}

func readWith(t *testing.T, k *fs.Kernel, c *fs.Cred, path string) string {
	t.Helper()
	f, err := k.Open(c, path, fs.ModeRead)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close() //nolint:errcheck
	d, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return string(d)
}

func TestLinkSurvivesMergeOfRename(t *testing.T) {
	// One partition renames a file while the other links it: both the
	// new name and the link survive, pointing at the same inode.
	h := newHarness(t, 2)
	write(t, h.c.K(1), "/orig", "content")
	h.c.Settle()
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	if err := h.c.K(1).Rename(cred(), "/orig", "/renamed"); err != nil {
		t.Fatal(err)
	}
	if err := h.c.K(2).Link(cred(), "/orig", "/linked"); err != nil {
		t.Fatal(err)
	}
	h.mergeAll(t)
	h.mergeAll(t)

	r1, err1 := h.c.K(1).Resolve(cred(), "/renamed")
	r2, err2 := h.c.K(1).Resolve(cred(), "/linked")
	if err1 != nil || err2 != nil {
		t.Fatalf("resolve: %v %v", err1, err2)
	}
	if r1.ID != r2.ID {
		t.Fatalf("renamed %v and linked %v diverge", r1.ID, r2.ID)
	}
	if got := read(t, h.c.K(2), "/renamed"); got != "content" {
		t.Fatalf("content %q", got)
	}
}

func TestThreePackConflictMarksAllCopies(t *testing.T) {
	h := newHarness(t, 3)
	write(t, h.c.K(1), "/f", "base")
	h.c.Settle()
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2}, []fs.SiteID{3})
	for s := fs.SiteID(1); s <= 3; s++ {
		update(t, h.c.K(s), "/f", fmt.Sprintf("way-%d", s))
	}
	rep := h.mergeAll(t)
	if rep.ConflictsReported != 1 {
		t.Fatalf("reported %d conflicts, want 1", rep.ConflictsReported)
	}
	confs := h.recs[1].ListConflicts()
	if len(confs) != 1 || len(confs[0].Copies) != 3 {
		t.Fatalf("conflicts: %+v", confs)
	}
	// ResolveKeep of the three-way conflict converges everywhere.
	if err := h.recs[1].ResolveKeep(confs[0].ID, 2); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()
	for s := fs.SiteID(1); s <= 3; s++ {
		if got := read(t, h.c.K(s), "/f"); got != "way-2" {
			t.Fatalf("site %d: %q", s, got)
		}
	}
}

func TestMergeReportCountsAreExact(t *testing.T) {
	h := newHarness(t, 2)
	write(t, h.c.K(1), "/keep", "same")
	write(t, h.c.K(1), "/mod", "v1")
	h.c.Settle()
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	update(t, h.c.K(1), "/mod", "v2") // plain staleness for site 2
	write(t, h.c.K(2), "/fresh", "new")
	rep := h.mergeAll(t)
	if rep.ConflictsReported != 0 || rep.NameConflicts != 0 || rep.DeletesUndone != 0 {
		t.Fatalf("unexpected conflict counts: %+v", rep)
	}
	if rep.DirsMerged != 1 {
		t.Fatalf("DirsMerged = %d, want 1 (the root)", rep.DirsMerged)
	}
	if rep.Propagated < 1 {
		t.Fatalf("Propagated = %d, want >=1 (/mod)", rep.Propagated)
	}
}
