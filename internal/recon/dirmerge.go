package recon

import (
	"fmt"
	"sort"

	"repro/internal/format"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// mergeDirectories implements the directory reconciliation algorithm of
// §4.4. Each copy is a set of records (live entries and delete
// tombstones). The merge:
//
//  1. checks for name conflicts — the same name bound to different
//     inodes in different partitions — and renames both apart,
//     notifying the owners by electronic mail;
//  2. resolves the remaining records inode by inode with rules (a)-(d):
//     (a) an entry present in one copy and not the other propagates;
//     (b) a delete present in one copy and absent in the other
//     propagates, unless the file was modified since the delete;
//     (c) entries present and live in both need no action;
//     (d) a delete in one copy racing a live entry in the other is
//     decided by interrogating the inode: if the data was modified
//     since the delete, the delete is undone, otherwise it
//     propagates.
func (r *Reconciler) mergeDirectories(id storage.FileID, copies []Copy, rep *Report) error {
	type variant struct {
		entry format.DirEntry
		sites []SiteID // copies carrying this exact binding
	}
	decoded := make([]*format.Directory, len(copies))
	for i, c := range copies {
		d, err := format.DecodeDir(c.Content)
		if err != nil {
			return fmt.Errorf("recon: directory %v copy at site %d: %w", id, copies[i].Site, err)
		}
		decoded[i] = d
	}

	// Group records by name.
	names := map[string]bool{}
	for _, d := range decoded {
		for _, e := range d.Entries {
			names[e.Name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	result := &format.Directory{}
	for _, name := range sorted {
		// Collect the per-copy record (or absence) for this name.
		var variants []variant
		for i, d := range decoded {
			e, ok := d.LookupAny(name)
			if !ok {
				continue
			}
			merged := false
			for vi := range variants {
				if variants[vi].entry.Inode == e.Inode && variants[vi].entry.Deleted == e.Deleted {
					variants[vi].sites = append(variants[vi].sites, copies[i].Site)
					merged = true
					break
				}
			}
			if !merged {
				variants = append(variants, variant{entry: e, sites: []SiteID{copies[i].Site}})
			}
		}

		// Drop live bindings to files that no longer exist: a stale
		// directory copy (typically a crashed site's old disk) can carry
		// a live entry for an inode whose delete has already won
		// everywhere. Resurrecting or conflict-renaming such a binding
		// would leave a dangling entry.
		kept := variants[:0]
		for _, v := range variants {
			if !v.entry.Deleted && !r.bindingAlive(storage.FileID{FG: id.FG, Inode: v.entry.Inode}) {
				continue
			}
			kept = append(kept, v)
		}
		if variants = kept; len(variants) == 0 {
			continue
		}

		// Distinct live inodes under one name → name conflict (rule 1).
		liveInodes := map[storage.InodeNum]format.DirEntry{}
		for _, v := range variants {
			if !v.entry.Deleted {
				liveInodes[v.entry.Inode] = v.entry
			}
		}
		if len(liveInodes) > 1 {
			nums := make([]storage.InodeNum, 0, len(liveInodes))
			for n := range liveInodes {
				nums = append(nums, n)
			}
			sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
			for _, n := range nums {
				altered := fmt.Sprintf("%s!i%d", name, n)
				result.Insert(altered, n)
				owner := r.ownerOf(storage.FileID{FG: id.FG, Inode: n})
				r.queueMail(owner, "locus-recovery",
					fmt.Sprintf("name conflict in directory %v: %q renamed to %q", id, name, altered))
			}
			rep.NameConflicts++
			continue
		}

		// One inode (or tombstones only): rules (a)-(d).
		var live, dead *variant
		for i := range variants {
			if variants[i].entry.Deleted {
				if dead == nil || variants[i].entry.DelVV.Compare(dead.entry.DelVV) == vclock.Dominates {
					dead = &variants[i]
				}
			} else {
				live = &variants[i]
			}
		}
		switch {
		case live != nil && dead == nil:
			// (a)/(c): propagate or keep the live entry.
			result.PutRaw(live.entry)
		case live == nil && dead != nil:
			// (b): propagate the delete, unless the file was modified
			// since the delete.
			fid := storage.FileID{FG: id.FG, Inode: dead.entry.Inode}
			if r.modifiedSinceDelete(fid, dead.entry.DelVV) {
				result.Insert(dead.entry.Name, dead.entry.Inode)
				rep.DeletesUndone++
			} else {
				result.PutRaw(dead.entry)
			}
		case live != nil && dead != nil:
			if dead.entry.Inode != live.entry.Inode {
				// The tombstone records the delete of a different file
				// that once held this name; it says nothing about the
				// live binding (one partition deleted its file while
				// another independently created a new one under the same
				// name). Dropping the live entry here would orphan a
				// committed inode.
				result.PutRaw(live.entry)
				break
			}
			// (d): delete in one partition, live in the other.
			fid := storage.FileID{FG: id.FG, Inode: dead.entry.Inode}
			if r.modifiedSinceDelete(fid, dead.entry.DelVV) {
				result.PutRaw(live.entry)
				rep.DeletesUndone++
				owner := r.ownerOf(fid)
				r.queueMail(owner, "locus-recovery",
					fmt.Sprintf("delete of %q in directory %v undone: the file was modified after the delete", name, id))
			} else {
				result.PutRaw(dead.entry)
			}
		}
	}

	if err := r.commitMerged(id, copies, format.EncodeDir(result), copies[0].Inode); err != nil {
		return err
	}
	rep.DirsMerged++
	return nil
}

// bindingAlive interrogates a directory entry's target across the
// partition: the binding is alive when some live copy of the inode is
// not dominated by a deleted copy (i.e. the deletion will not win the
// file-level reconciliation).
func (r *Reconciler) bindingAlive(id storage.FileID) bool {
	sums := r.k.ProbeAll(id)
	if len(sums) == 0 {
		// No reachable pack knows the inode — its storage sites may all
		// be outside the partition. Keep the binding: dropping it would
		// lose a file we cannot interrogate.
		return true
	}
	var dels []vclock.VV
	for _, s := range sums {
		if s.Deleted {
			dels = append(dels, s.VV)
		}
	}
	for _, s := range sums {
		if s.Deleted {
			continue
		}
		dominated := false
		for _, dv := range dels {
			if dv.DominatesOrEqual(s.VV) {
				dominated = true
				break
			}
		}
		if !dominated {
			return true
		}
	}
	return false
}

// relinkResurrected restores the naming of a file brought back by a
// delete/update resolution (§4.4: "a file which was deleted in one
// partition while it was modified in another, wants to be saved"). The
// file-level resurrect can run after the directory copies have already
// converged on the tombstone — a stalled propagation may deliver the
// deleting partition's directory before reconciliation compares the
// copies — which would leave the saved file as a live inode with no
// link. This scans the filegroup's directories for the tombstone
// naming the file and turns it back into a live entry
// (conflict-renaming it if the name has since been reused), committing
// the directory with a dominating vector so the relink propagates.
func (r *Reconciler) relinkResurrected(id storage.FileID) {
	k := r.k
	d, ok := k.Config().FG(id.FG)
	if !ok {
		return
	}
	part := map[SiteID]bool{}
	for _, s := range k.Partition() {
		part[s] = true
	}
	type tomb struct {
		dir  storage.FileID
		name string
	}
	var tombs []tomb
	seen := map[storage.FileID]bool{}
	for _, p := range d.Packs {
		if !part[p.Site] {
			continue
		}
		sums, err := k.ListInodesAt(p.Site, id.FG)
		if err != nil {
			continue
		}
		for _, s := range sums {
			if s.Deleted || (s.Type != storage.TypeDirectory && s.Type != storage.TypeHiddenDir) {
				continue
			}
			dirID := storage.FileID{FG: id.FG, Inode: s.Num}
			if seen[dirID] {
				continue
			}
			seen[dirID] = true
			_, content, err := k.FetchCopyFrom(p.Site, dirID)
			if err != nil {
				continue
			}
			dir, err := format.DecodeDir(content)
			if err != nil {
				continue
			}
			for _, e := range dir.Entries {
				if e.Inode != id.Inode {
					continue
				}
				if !e.Deleted {
					return // still linked; nothing to repair
				}
				tombs = append(tombs, tomb{dir: dirID, name: e.Name})
			}
		}
	}
	if len(tombs) == 0 {
		return
	}
	sort.Slice(tombs, func(i, j int) bool {
		if tombs[i].dir != tombs[j].dir {
			return tombs[i].dir.Inode < tombs[j].dir.Inode
		}
		return tombs[i].name < tombs[j].name
	})
	t := tombs[0]
	copies, err := r.fetchCopies(t.dir, r.storesOf(t.dir))
	if err != nil {
		return
	}
	best := 0
	for i := 1; i < len(copies); i++ {
		if copies[i].Inode.VV.Compare(copies[best].Inode.VV) == vclock.Dominates {
			best = i
		}
	}
	dir, err := format.DecodeDir(copies[best].Content)
	if err != nil {
		return
	}
	name := t.name
	if e, ok := dir.LookupAny(name); ok && !e.Deleted && e.Inode != id.Inode {
		// The name was reused for a different file; bring the saved one
		// back under a conflict-style altered name and tell the owner.
		name = fmt.Sprintf("%s!i%d", t.name, id.Inode)
		r.queueMail(r.ownerOf(id), "locus-recovery",
			fmt.Sprintf("undone delete of %q in directory %v restored as %q: the name was reused", t.name, t.dir, name))
	}
	dir.Insert(name, id.Inode)
	if err := r.commitMerged(t.dir, copies, format.EncodeDir(dir), copies[best].Inode); err != nil {
		return
	}
}

// modifiedSinceDelete interrogates the file's current state across the
// partition: true when some live copy's vector is not dominated by the
// delete-time vector (i.e. an update happened the delete did not see).
func (r *Reconciler) modifiedSinceDelete(id storage.FileID, delVV vclock.VV) bool {
	for _, s := range r.k.ProbeAll(id) {
		if s.Deleted {
			continue
		}
		switch s.VV.Compare(delVV) {
		case vclock.Dominates, vclock.Concurrent:
			return true
		}
	}
	return false
}

// ownerOf looks up a file's owner for conflict mail.
func (r *Reconciler) ownerOf(id storage.FileID) string {
	for _, s := range r.k.Partition() {
		ino, _, err := r.k.FetchCopyFrom(s, id)
		if err == nil && ino != nil {
			if ino.Owner != "" {
				return ino.Owner
			}
		}
	}
	return "root"
}

// mergeMailboxes implements §4.5: mailboxes merge by unioning message
// records; tombstones win over live copies of the same ID, and globally
// unique message IDs make name conflicts impossible.
func (r *Reconciler) mergeMailboxes(id storage.FileID, copies []Copy, rep *Report) error {
	result := &format.Mailbox{}
	for i, c := range copies {
		mb, err := format.DecodeMailbox(c.Content)
		if err != nil {
			return fmt.Errorf("recon: mailbox %v copy at site %d: %w", id, copies[i].Site, err)
		}
		for _, msg := range mb.Messages {
			if existing := findMsg(result, msg.ID); existing != nil {
				if msg.Deleted && !existing.Deleted {
					result.PutRaw(msg)
				}
				continue
			}
			result.PutRaw(msg)
		}
	}
	if err := r.commitMerged(id, copies, format.EncodeMailbox(result), copies[0].Inode); err != nil {
		return err
	}
	rep.MailboxesMerged++
	return nil
}

func findMsg(m *format.Mailbox, id string) *format.Message {
	for i := range m.Messages {
		if m.Messages[i].ID == id {
			return &m.Messages[i]
		}
	}
	return nil
}
