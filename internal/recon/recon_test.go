package recon_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fs"
	"repro/internal/recon"
	"repro/internal/storage"
)

type harness struct {
	c    *cluster.Cluster
	recs map[fs.SiteID]*recon.Reconciler
}

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	c := cluster.Simple(n)
	t.Cleanup(c.Close)
	h := &harness{c: c, recs: make(map[fs.SiteID]*recon.Reconciler)}
	for _, s := range c.Sites() {
		h.recs[s] = recon.New(c.K(s))
	}
	return h
}

// mergeAll heals the network and runs the reconciliation pass at every
// site (each file is merged once, by its lowest storing site).
func (h *harness) mergeAll(t *testing.T) recon.Report {
	t.Helper()
	h.c.Heal()
	h.c.Settle()
	var total recon.Report
	for _, s := range h.c.Sites() {
		rep, err := h.recs[s].ReconcileAll()
		if err != nil {
			t.Fatalf("reconcile at site %d: %v", s, err)
		}
		total.DirsMerged += rep.DirsMerged
		total.MailboxesMerged += rep.MailboxesMerged
		total.ManagerMerged += rep.ManagerMerged
		total.ConflictsReported += rep.ConflictsReported
		total.Propagated += rep.Propagated
		total.NameConflicts += rep.NameConflicts
		total.DeletesUndone += rep.DeletesUndone
	}
	h.c.Settle()
	return total
}

func cred() *fs.Cred { return fs.DefaultCred("tester") }

func write(t *testing.T, k *fs.Kernel, path, data string) {
	t.Helper()
	f, err := k.Create(cred(), path, storage.TypeRegular, 0644)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if err := f.WriteAll([]byte(data)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func update(t *testing.T, k *fs.Kernel, path, data string) {
	t.Helper()
	f, err := k.Open(cred(), path, fs.ModeModify)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if err := f.WriteAll([]byte(data)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func read(t *testing.T, k *fs.Kernel, path string) string {
	t.Helper()
	f, err := k.Open(cred(), path, fs.ModeRead)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close() //nolint:errcheck
	data, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func names(ents []struct {
	Name string
}) []string {
	return nil
}

func dirNames(t *testing.T, k *fs.Kernel, path string) []string {
	t.Helper()
	ents, err := k.ReadDir(cred(), path)
	if err != nil {
		t.Fatalf("readdir %s: %v", path, err)
	}
	var out []string
	for _, e := range ents {
		out = append(out, e.Name)
	}
	return out
}

func TestDirectoryMergeIndependentInserts(t *testing.T) {
	// Rule (a): entries created in different partitions both survive.
	h := newHarness(t, 2)
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	write(t, h.c.K(1), "/from1", "one")
	write(t, h.c.K(2), "/from2", "two")
	rep := h.mergeAll(t)
	if rep.DirsMerged == 0 {
		t.Fatal("no directory merge performed")
	}
	for _, s := range h.c.Sites() {
		got := dirNames(t, h.c.K(s), "/")
		if !containsStr(got, "from1") || !containsStr(got, "from2") {
			t.Fatalf("site %d sees %v", s, got)
		}
	}
	// Both files are readable everywhere after propagation.
	if read(t, h.c.K(1), "/from2") != "two" || read(t, h.c.K(2), "/from1") != "one" {
		t.Fatal("cross-partition files not propagated")
	}
}

func TestDirectoryMergeDeletePropagates(t *testing.T) {
	// Rule (b): a delete done in one partition propagates at merge.
	h := newHarness(t, 2)
	write(t, h.c.K(1), "/doomed", "bye")
	h.c.Settle()
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	if err := h.c.K(1).Unlink(cred(), "/doomed"); err != nil {
		t.Fatal(err)
	}
	h.mergeAll(t)
	for _, s := range h.c.Sites() {
		if _, err := h.c.K(s).Open(cred(), "/doomed", fs.ModeRead); !errors.Is(err, fs.ErrNotFound) {
			t.Fatalf("site %d still resolves deleted file: %v", s, err)
		}
	}
}

func TestDirectoryMergeDeleteModifyRaceUndoesDelete(t *testing.T) {
	// Rule (d): "a file which was deleted in one partition while it was
	// modified in another, wants to be saved."
	h := newHarness(t, 2)
	write(t, h.c.K(1), "/contested", "v1")
	h.c.Settle()
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	if err := h.c.K(1).Unlink(cred(), "/contested"); err != nil {
		t.Fatal(err)
	}
	update(t, h.c.K(2), "/contested", "v2-modified")
	rep := h.mergeAll(t)
	if rep.DeletesUndone == 0 {
		t.Fatal("delete/modify race not detected")
	}
	for _, s := range h.c.Sites() {
		if got := read(t, h.c.K(s), "/contested"); got != "v2-modified" {
			t.Fatalf("site %d reads %q, want the modified version", s, got)
		}
	}
	// The file's owner got notification mail.
	msgs, err := h.recs[1].ReadMail("tester")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range msgs {
		if strings.Contains(m.Body, "undone") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no undo notification in mail: %+v", msgs)
	}
}

func TestDirectoryMergeDeleteWinsWhenUnmodified(t *testing.T) {
	// Rule (d) complement: if the file was NOT modified since the
	// delete, the delete propagates.
	h := newHarness(t, 2)
	write(t, h.c.K(1), "/stale", "v1")
	h.c.Settle()
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	if err := h.c.K(1).Unlink(cred(), "/stale"); err != nil {
		t.Fatal(err)
	}
	// Partition 2 reads but does not modify.
	_ = read(t, h.c.K(2), "/stale")
	h.mergeAll(t)
	for _, s := range h.c.Sites() {
		if _, err := h.c.K(s).Open(cred(), "/stale", fs.ModeRead); !errors.Is(err, fs.ErrNotFound) {
			t.Fatalf("site %d: delete did not propagate: %v", s, err)
		}
	}
}

func TestDirectoryMergeNameConflictRenamesBoth(t *testing.T) {
	// §4.4 rule 1: same name, different files -> both renamed, owners
	// mailed.
	h := newHarness(t, 2)
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	write(t, h.c.K(1), "/clash", "from partition 1")
	write(t, h.c.K(2), "/clash", "from partition 2")
	rep := h.mergeAll(t)
	if rep.NameConflicts == 0 {
		t.Fatal("name conflict not detected")
	}
	got := dirNames(t, h.c.K(1), "/")
	var renamed []string
	for _, n := range got {
		if strings.HasPrefix(n, "clash!i") {
			renamed = append(renamed, n)
		}
	}
	if len(renamed) != 2 {
		t.Fatalf("renamed entries = %v (all: %v)", renamed, got)
	}
	if containsStr(got, "clash") {
		t.Fatalf("original conflicted name survived: %v", got)
	}
	// Contents preserved under the new names.
	bodies := map[string]bool{}
	for _, n := range renamed {
		bodies[read(t, h.c.K(2), "/"+n)] = true
	}
	if !bodies["from partition 1"] || !bodies["from partition 2"] {
		t.Fatalf("contents lost in rename: %v", bodies)
	}
	// Owner notified.
	msgs, err := h.recs[1].ReadMail("tester")
	if err != nil || len(msgs) == 0 {
		t.Fatalf("no conflict mail: %v %v", msgs, err)
	}
}

func TestUntypedConflictReportedAndBlocked(t *testing.T) {
	// §4.6: untyped files in conflict are marked (opens fail), owner
	// mailed.
	h := newHarness(t, 2)
	write(t, h.c.K(1), "/data", "base")
	h.c.Settle()
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	update(t, h.c.K(1), "/data", "one way")
	update(t, h.c.K(2), "/data", "other way")
	rep := h.mergeAll(t)
	if rep.ConflictsReported != 1 {
		t.Fatalf("ConflictsReported = %d, want 1", rep.ConflictsReported)
	}
	if _, err := h.c.K(1).Open(cred(), "/data", fs.ModeRead); !errors.Is(err, fs.ErrConflict) {
		t.Fatalf("open conflicted file: %v, want ErrConflict", err)
	}
	msgs, err := h.recs[1].ReadMail("tester")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range msgs {
		if strings.Contains(m.Body, "conflict") && m.From == "locus-recovery" {
			found = true
		}
	}
	if !found {
		t.Fatalf("owner not mailed: %+v", msgs)
	}
	// The conflict is listed by the tool.
	confs := h.recs[1].ListConflicts()
	if len(confs) != 1 || len(confs[1-1].Copies) != 2 {
		t.Fatalf("ListConflicts = %+v", confs)
	}
}

func TestResolveKeep(t *testing.T) {
	h := newHarness(t, 2)
	write(t, h.c.K(1), "/data", "base")
	h.c.Settle()
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	update(t, h.c.K(1), "/data", "winner")
	update(t, h.c.K(2), "/data", "loser")
	h.mergeAll(t)

	confs := h.recs[1].ListConflicts()
	if len(confs) != 1 {
		t.Fatalf("conflicts = %+v", confs)
	}
	if err := h.recs[1].ResolveKeep(confs[0].ID, 1); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()
	for _, s := range h.c.Sites() {
		if got := read(t, h.c.K(s), "/data"); got != "winner" {
			t.Fatalf("site %d reads %q", s, got)
		}
	}
	if len(h.recs[1].ListConflicts()) != 0 {
		t.Fatal("conflict not cleared")
	}
}

func TestResolveSplit(t *testing.T) {
	h := newHarness(t, 2)
	write(t, h.c.K(1), "/data", "base")
	h.c.Settle()
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	update(t, h.c.K(1), "/data", "version A")
	update(t, h.c.K(2), "/data", "version B")
	h.mergeAll(t)

	names, err := h.recs[1].ResolveSplit(cred(), "/data")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("split names = %v", names)
	}
	h.c.Settle()
	bodies := map[string]bool{}
	for _, n := range names {
		bodies[read(t, h.c.K(2), n)] = true
	}
	if !bodies["version A"] || !bodies["version B"] {
		t.Fatalf("split contents = %v", bodies)
	}
	if _, err := h.c.K(1).Open(cred(), "/data", fs.ModeRead); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("original should be gone: %v", err)
	}
}

func TestMailboxMergeUnionMinusDeletes(t *testing.T) {
	// §4.5 / E9: after merge the mailbox is the union of both
	// partitions' deliveries minus deletions, with no name conflicts.
	h := newHarness(t, 2)
	if err := h.recs[1].DeliverMail("bob", "alice", "pre-partition"); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()
	pre, err := h.recs[1].ReadMail("bob")
	if err != nil || len(pre) != 1 {
		t.Fatalf("pre mail: %v %v", pre, err)
	}
	preID := pre[0].ID

	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	if err := h.recs[1].DeliverMail("bob", "carol", "from partition 1"); err != nil {
		t.Fatal(err)
	}
	if err := h.recs[2].DeliverMail("bob", "dave", "from partition 2"); err != nil {
		t.Fatal(err)
	}
	// Partition 2 also deletes the pre-partition message.
	if err := h.recs[2].DeleteMail("bob", preID); err != nil {
		t.Fatal(err)
	}
	rep := h.mergeAll(t)
	if rep.MailboxesMerged == 0 {
		t.Fatal("mailbox not merged")
	}
	for _, s := range h.c.Sites() {
		msgs, err := h.recs[s].ReadMail("bob")
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 2 {
			t.Fatalf("site %d mailbox = %+v, want 2 messages", s, msgs)
		}
		var froms []string
		for _, m := range msgs {
			froms = append(froms, m.From)
		}
		if !containsStr(froms, "carol") || !containsStr(froms, "dave") || containsStr(froms, "alice") {
			t.Fatalf("site %d mailbox froms = %v", s, froms)
		}
	}
}

func TestDatabaseMergeManager(t *testing.T) {
	// §4.3: database-typed conflicts go to a registered recovery/merge
	// manager instead of the owner.
	h := newHarness(t, 2)
	f, err := h.c.K(1).Create(cred(), "/db", storage.TypeDatabase, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAll([]byte("a=1\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	update(t, h.c.K(1), "/db", "a=1\nb=2\n")
	update(t, h.c.K(2), "/db", "a=1\nc=3\n")

	// A line-union merge manager at every site.
	mgr := func(id storage.FileID, copies []recon.Copy) ([]byte, error) {
		seen := map[string]bool{}
		var out []string
		for _, c := range copies {
			for _, line := range strings.Split(string(c.Content), "\n") {
				if line != "" && !seen[line] {
					seen[line] = true
					out = append(out, line)
				}
			}
		}
		return []byte(strings.Join(out, "\n") + "\n"), nil
	}
	for _, s := range h.c.Sites() {
		h.recs[s].RegisterManager(storage.TypeDatabase, mgr)
	}
	rep := h.mergeAll(t)
	if rep.ManagerMerged != 1 {
		t.Fatalf("ManagerMerged = %d, want 1", rep.ManagerMerged)
	}
	got := read(t, h.c.K(2), "/db")
	for _, want := range []string{"a=1", "b=2", "c=3"} {
		if !strings.Contains(got, want) {
			t.Fatalf("merged db missing %q: %q", want, got)
		}
	}
}

func TestReconcileIdempotent(t *testing.T) {
	// Running reconciliation twice must not change anything further.
	h := newHarness(t, 2)
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2})
	write(t, h.c.K(1), "/a", "1")
	write(t, h.c.K(2), "/b", "2")
	h.mergeAll(t)
	rep2 := h.mergeAll(t)
	if rep2.DirsMerged != 0 || rep2.ConflictsReported != 0 || rep2.Propagated != 0 {
		t.Fatalf("second pass not idempotent: %+v", rep2)
	}
}

func TestThreeWayPartitionMerge(t *testing.T) {
	// Three partitions each create a file; after a full merge everyone
	// sees all three.
	h := newHarness(t, 3)
	h.c.Partition([]fs.SiteID{1}, []fs.SiteID{2}, []fs.SiteID{3})
	for s := fs.SiteID(1); s <= 3; s++ {
		write(t, h.c.K(s), fmt.Sprintf("/file%d", s), fmt.Sprintf("site %d", s))
	}
	h.mergeAll(t)
	// A second pass may be needed: the first merges pairwise histories
	// into one dominant root, the second propagates files scheduled by
	// directory merge.
	h.mergeAll(t)
	for s := fs.SiteID(1); s <= 3; s++ {
		got := dirNames(t, h.c.K(s), "/")
		for i := 1; i <= 3; i++ {
			if !containsStr(got, fmt.Sprintf("file%d", i)) {
				t.Fatalf("site %d sees %v", s, got)
			}
		}
	}
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
