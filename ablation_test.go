package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/fs"
	"repro/internal/storage"
	"repro/locus"
)

// Ablation benchmarks: turn off individual LOCUS design choices and
// measure what they buy. These back the design-rationale claims in
// DESIGN.md rather than a specific paper table.

// BenchmarkAblationOpenOptimizations compares the open protocol with
// and without the §2.3.3 shortcuts (US-is-SS, CSS-is-SS answer without
// contacting a third site).
func BenchmarkAblationOpenOptimizations(b *testing.B) {
	for _, optimized := range []bool{true, false} {
		name := "optimized"
		if !optimized {
			name = "always-general"
		}
		b.Run(name, func(b *testing.B) {
			c := mustSimple(b, 3)
			u1 := c.Site(1).Login("u")
			mustWrite(b, u1, "/f", pageOf('x'))
			if err := c.Site(1).FS.SetReplication(u1.Cred(), "/f", []locus.SiteID{3}); err != nil {
				b.Fatal(err)
			}
			c.Settle()
			for _, s := range c.Sites() {
				c.Site(s).FS.SetOpenOptimizations(optimized)
			}
			r, err := c.Site(1).FS.Resolve(u1.Cred(), "/f")
			if err != nil {
				b.Fatal(err)
			}
			// US=3 stores the latest copy: with optimizations this open
			// costs 2 messages, without it the CSS polls an SS anyway.
			start := c.Stats().Msgs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := c.Site(3).FS.OpenID(r.ID, fs.ModeRead)
				if err != nil {
					b.Fatal(err)
				}
				if err := f.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportSim(b, c, start, int64(b.N))
		})
	}
}

// BenchmarkAblationPathCache compares pathname searching with and
// without the §2.3.4 zero-message local-directory fast path.
func BenchmarkAblationPathCache(b *testing.B) {
	for _, fast := range []bool{true, false} {
		name := "local-search"
		if !fast {
			name = "always-via-css"
		}
		b.Run(name, func(b *testing.B) {
			c := mustSimple(b, 3)
			u := c.Site(2).Login("u")
			if err := u.Mkdir("/a"); err != nil {
				b.Fatal(err)
			}
			if err := u.Mkdir("/a/b"); err != nil {
				b.Fatal(err)
			}
			if err := u.Mkdir("/a/b/c"); err != nil {
				b.Fatal(err)
			}
			mustWrite(b, u, "/a/b/c/leaf", []byte("x"))
			c.Settle()
			for _, s := range c.Sites() {
				c.Site(s).FS.SetLocalSearchFastPath(fast)
			}
			start := c.Stats().Msgs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Site(2).FS.Resolve(u.Cred(), "/a/b/c/leaf"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportSim(b, c, start, int64(b.N))
		})
	}
}

// BenchmarkAblationPagePropagation compares page-level propagation
// (the commit notification names the modified pages, §2.3.6) against
// whole-file pulls for a small update to a large file.
func BenchmarkAblationPagePropagation(b *testing.B) {
	for _, pages := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("filepages-%d", pages), func(b *testing.B) {
			c := mustSimple(b, 2)
			u1 := c.Site(1).Login("u")
			big := make([]byte, pages*storage.PageSize)
			mustWrite(b, u1, "/big", big)
			if err := c.Site(1).FS.SetReplication(u1.Cred(), "/big", []locus.SiteID{1, 2}); err != nil {
				b.Fatal(err)
			}
			c.Settle()
			r, err := c.Site(1).FS.Resolve(u1.Cred(), "/big")
			if err != nil {
				b.Fatal(err)
			}
			start := c.Stats().Msgs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, err := c.Site(1).FS.OpenID(r.ID, fs.ModeModify)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.WriteAt(pageOf(byte('a'+i%20)), 0); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
				c.Settle() // pulls exactly the one modified page
			}
			b.StopTimer()
			reportSim(b, c, start, int64(b.N))
		})
	}
}

// TestAblationOpenOptimizationSavesMessages proves the optimized open
// is strictly cheaper.
func TestAblationOpenOptimizationSavesMessages(t *testing.T) {
	measure := func(optimized bool) int64 {
		c, err := locus.Simple(3)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		u1 := c.Site(1).Login("u")
		if err := u1.WriteFile("/f", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := c.Site(1).FS.SetReplication(u1.Cred(), "/f", []locus.SiteID{3}); err != nil {
			t.Fatal(err)
		}
		c.Settle()
		for _, s := range c.Sites() {
			c.Site(s).FS.SetOpenOptimizations(optimized)
		}
		r, err := c.Site(1).FS.Resolve(u1.Cred(), "/f")
		if err != nil {
			t.Fatal(err)
		}
		before := c.Stats().Msgs
		f, err := c.Site(3).FS.OpenID(r.ID, fs.ModeRead)
		if err != nil {
			t.Fatal(err)
		}
		msgs := c.Stats().Msgs - before
		f.Close() //nolint:errcheck
		return msgs
	}
	opt := measure(true)
	gen := measure(false)
	if opt != 2 {
		t.Fatalf("optimized US-is-SS open = %d msgs, want 2", opt)
	}
	if gen <= opt {
		t.Fatalf("general open (%d msgs) should cost more than optimized (%d)", gen, opt)
	}
}

// TestAblationLocalSearchSavesMessages proves the local-directory fast
// path eliminates network traffic for local resolution.
func TestAblationLocalSearchSavesMessages(t *testing.T) {
	c, err := locus.Simple(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	u := c.Site(2).Login("u")
	if err := u.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := u.WriteFile("/d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Settle()

	before := c.Stats().Msgs
	if _, err := c.Site(2).FS.Resolve(u.Cred(), "/d/f"); err != nil {
		t.Fatal(err)
	}
	withFast := c.Stats().Msgs - before

	c.Site(2).FS.SetLocalSearchFastPath(false)
	before = c.Stats().Msgs
	if _, err := c.Site(2).FS.Resolve(u.Cred(), "/d/f"); err != nil {
		t.Fatal(err)
	}
	withoutFast := c.Stats().Msgs - before

	if withFast != 0 {
		t.Fatalf("local search with fast path = %d msgs, want 0", withFast)
	}
	if withoutFast == 0 {
		t.Fatalf("disabled fast path should cost messages")
	}
}
