// Package locus is the public API of this reproduction of the LOCUS
// distributed operating system (Walker, Popek, English, Kline, Thiel —
// SOSP 1983).
//
// A Cluster is a simulated network of sites, each running the full
// LOCUS kernel stack: the network-transparent distributed filesystem
// with replication and atomic commit, transparent remote processes
// with network-wide Unix IPC, nested transactions, the dynamic
// reconfiguration protocols, and automatic reconciliation of
// replicated directories and mailboxes after partitions heal.
//
// Quickstart:
//
//	c, _ := locus.NewCluster(locus.ClusterSpec{
//		Sites: []locus.SiteSpec{{ID: 1}, {ID: 2}, {ID: 3}},
//		Filegroups: []locus.FilegroupSpec{
//			{ID: 1, MountPath: "/", Replicas: []locus.SiteID{1, 2, 3}},
//		},
//	})
//	defer c.Close()
//	s := c.Site(1).Login("alice")
//	_ = s.WriteFile("/hello", []byte("transparent!"))
//	c.Settle() // let replication propagate
//	data, _ := c.Site(3).Login("bob").ReadFile("/hello")
package locus

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/fs"
	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/recon"
	"repro/internal/storage"
	"repro/internal/topology"
	"repro/internal/txn"
	"repro/internal/vclock"
)

// SiteID identifies a site in the network.
type SiteID = vclock.SiteID

// FileID is a file's globally unique low-level name
// (<filegroup, inode>).
type FileID = storage.FileID

// Re-exported file types for creation calls.
const (
	TypeRegular  = storage.TypeRegular
	TypeDatabase = storage.TypeDatabase
	TypeMailbox  = storage.TypeMailbox
)

// Open modes.
const (
	Read   = fs.ModeRead
	Modify = fs.ModeModify
)

// Common errors, re-exported from the kernel layers.
var (
	ErrNotFound      = fs.ErrNotFound
	ErrExists        = fs.ErrExists
	ErrBusy          = fs.ErrBusy
	ErrConflict      = fs.ErrConflict
	ErrStale         = fs.ErrStale
	ErrNoCSS         = fs.ErrNoCSS
	ErrNoStorageSite = fs.ErrNoStorageSite
)

// SiteSpec describes one site.
type SiteSpec struct {
	ID SiteID
	// MachineType names the CPU type for heterogeneous-load-module
	// resolution (defaults to "vax").
	MachineType string
}

// FilegroupSpec describes one logical filegroup and its replication.
type FilegroupSpec struct {
	ID storage.FilegroupID
	// MountPath is "/" for the root filegroup.
	MountPath string
	// Replicas lists the sites holding physical containers (packs).
	Replicas []SiteID
}

// ClusterSpec configures a cluster.
type ClusterSpec struct {
	Sites      []SiteSpec
	Filegroups []FilegroupSpec
	// Costs optionally overrides the simulated cost model.
	Costs *netsim.CostModel
}

// Cluster is a running LOCUS network.
type Cluster struct {
	net   *netsim.Network
	cfg   *fs.Config
	sites map[SiteID]*Site
	order []SiteID
}

// Site is one machine running the LOCUS kernel stack.
type Site struct {
	id      SiteID
	cluster *Cluster

	// FS is the distributed filesystem kernel.
	FS *fs.Kernel
	// Proc is the process manager.
	Proc *proc.Manager
	// Txn is the nested-transaction manager.
	Txn *txn.Manager
	// Recon is the reconciliation driver.
	Recon *recon.Reconciler
	// Topo runs the reconfiguration protocols.
	Topo *topology.Manager
}

// ID returns the site id.
func (s *Site) ID() SiteID { return s.id }

// NewCluster builds, boots, and formats a cluster.
func NewCluster(spec ClusterSpec) (*Cluster, error) {
	if len(spec.Sites) == 0 {
		return nil, errors.New("locus: no sites")
	}
	var fgs []fs.FilegroupDesc
	for _, f := range spec.Filegroups {
		var packs []fs.PackDesc
		for i, s := range f.Replicas {
			packs = append(packs, fs.PackDesc{
				Site: s,
				Lo:   storage.InodeNum(i*1_000_000 + 1),
				Hi:   storage.InodeNum((i + 1) * 1_000_000),
			})
		}
		fgs = append(fgs, fs.FilegroupDesc{FG: f.ID, MountPath: f.MountPath, Packs: packs})
	}
	cfg, err := fs.NewConfig(fgs)
	if err != nil {
		return nil, err
	}
	costs := netsim.DefaultCosts()
	if spec.Costs != nil {
		costs = *spec.Costs
	}
	nw := netsim.New(costs)
	c := &Cluster{net: nw, cfg: cfg, sites: make(map[SiteID]*Site)}

	var allSites []SiteID
	for _, ss := range spec.Sites {
		allSites = append(allSites, ss.ID)
	}
	sort.Slice(allSites, func(i, j int) bool { return allSites[i] < allSites[j] })

	kernels := make(map[SiteID]*fs.Kernel)
	for _, ss := range spec.Sites {
		node := nw.AddSite(ss.ID)
		k, err := fs.BootSite(node, cfg, nw.Meter(), storage.Costs{DiskUs: costs.DiskUs, PageCPU: costs.PageCPU})
		if err != nil {
			nw.Close()
			return nil, err
		}
		mt := ss.MachineType
		if mt == "" {
			mt = "vax"
		}
		site := &Site{
			id:      ss.ID,
			cluster: c,
			FS:      k,
			Proc:    proc.NewManager(node, k, mt),
			Txn:     txn.NewManager(k),
			Recon:   recon.New(k),
			Topo:    topology.New(node, allSites),
		}
		// Membership changes drive the §5.6 cleanup procedure in every
		// kernel layer.
		site.Topo.OnChange(func(p []SiteID) {
			site.FS.CleanupAfterPartitionChange(p)
			site.Proc.CleanupAfterPartitionChange(p)
			site.Txn.CleanupAfterPartitionChange(p)
			site.FS.RequeueStalledPropagations()
		})
		// A crash additionally discards the volatile transaction tables
		// (proc registers its own crash hook in NewManager).
		node.OnCrash(site.Txn.CrashLocal)
		kernels[ss.ID] = k
		c.sites[ss.ID] = site
		c.order = append(c.order, ss.ID)
	}
	sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
	if err := fs.Format(kernels, cfg); err != nil {
		nw.Close()
		return nil, err
	}
	return c, nil
}

// Simple builds an n-site cluster (ids 1..n) with one filegroup
// replicated everywhere and mounted at "/".
func Simple(n int) (*Cluster, error) {
	var sites []SiteSpec
	var reps []SiteID
	for i := 1; i <= n; i++ {
		sites = append(sites, SiteSpec{ID: SiteID(i)})
		reps = append(reps, SiteID(i))
	}
	return NewCluster(ClusterSpec{
		Sites:      sites,
		Filegroups: []FilegroupSpec{{ID: 1, MountPath: "/", Replicas: reps}},
	})
}

// Close shuts the cluster down.
func (c *Cluster) Close() { c.net.Close() }

// Site returns a site by id (nil if unknown).
func (c *Cluster) Site(id SiteID) *Site { return c.sites[id] }

// Sites returns all site ids, ascending.
func (c *Cluster) Sites() []SiteID { return append([]SiteID(nil), c.order...) }

// Network exposes the underlying simulated network (for tests,
// benchmarks, and fault injection).
func (c *Cluster) Network() *netsim.Network { return c.net }

// Stats returns a snapshot of network traffic and simulated costs.
func (c *Cluster) Stats() netsim.Snapshot { return c.net.Stats() }

// Fsck runs the deep structural check (page leaks, orphan inodes,
// dangling directory entries, corrupt directories) across every site's
// on-disk state. With converged=true — valid only after a full heal,
// merge, and settle — it additionally requires all copies of every file
// to agree (equal version vectors, identical content, no unresolved
// conflict flags). A nil result means clean.
func (c *Cluster) Fsck(converged bool) []fs.FsckFinding {
	kernels := make([]*fs.Kernel, 0, len(c.order))
	for _, id := range c.order {
		kernels = append(kernels, c.sites[id].FS)
	}
	return fs.FsckCluster(kernels, fs.FsckOptions{Converged: converged})
}

// Settle drains all background propagation until quiescent, returning
// the number of pulls completed.
func (c *Cluster) Settle() int {
	total := 0
	for pass := 0; pass < 100; pass++ {
		c.net.Quiesce()
		n := 0
		for _, id := range c.order {
			n += c.sites[id].FS.DrainPropagation()
		}
		total += n
		if n == 0 {
			c.net.Quiesce()
			pending := 0
			for _, id := range c.order {
				pending += c.sites[id].FS.PendingPropagations()
			}
			if pending == 0 {
				return total
			}
		}
	}
	return total
}

// Partition severs the network into the given groups and runs the
// partition protocol in each; every site's kernel runs the cleanup
// procedure via the topology callback.
func (c *Cluster) Partition(groups ...[]SiteID) {
	c.net.PartitionGroups(groups...)
	c.net.Quiesce()
	for _, g := range groups {
		if len(g) > 0 {
			c.sites[g[0]].Topo.RunPartitionProtocol()
		}
	}
	c.net.Quiesce()
}

// Merge heals the physical network, runs the merge protocol from the
// lowest up site, reconciles every filegroup, and settles propagation.
// It returns the combined reconciliation report.
func (c *Cluster) Merge() (recon.Report, error) {
	c.net.HealAll()
	var initiator *Site
	for _, id := range c.order {
		if c.net.Up(id) {
			initiator = c.sites[id]
			break
		}
	}
	var rep recon.Report
	if initiator == nil {
		return rep, errors.New("locus: no site up")
	}
	if _, err := initiator.Topo.RunMergeProtocol(); err != nil {
		return rep, err
	}
	c.net.Quiesce()
	c.Settle()
	// Reconciliation runs at every site; each file is merged once (by
	// its lowest storing site). Two passes let directory merges expose
	// files that then propagate.
	for pass := 0; pass < 2; pass++ {
		for _, id := range c.order {
			if !c.net.Up(id) {
				continue
			}
			r, err := c.sites[id].Recon.ReconcileAll()
			rep = addReports(rep, r)
			if err != nil {
				return rep, err
			}
		}
		c.Settle()
	}
	return rep, nil
}

func addReports(a, b recon.Report) recon.Report {
	a.DirsMerged += b.DirsMerged
	a.MailboxesMerged += b.MailboxesMerged
	a.ManagerMerged += b.ManagerMerged
	a.ConflictsReported += b.ConflictsReported
	a.Propagated += b.Propagated
	a.NameConflicts += b.NameConflicts
	a.DeletesUndone += b.DeletesUndone
	return a
}

// Crash abruptly takes a site down (volatile state lost, disk kept);
// the survivors run the partition protocol.
func (c *Cluster) Crash(id SiteID) {
	c.net.Crash(id)
	c.net.Quiesce()
	for _, sid := range c.order {
		if c.net.Up(sid) {
			c.sites[sid].Topo.RunPartitionProtocol()
			break
		}
	}
	c.net.Quiesce()
}

// Restart brings a crashed site back and merges it into the partition.
func (c *Cluster) Restart(id SiteID) (recon.Report, error) {
	c.net.Restart(id)
	return c.Merge()
}

// String describes the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("locus.Cluster{%d sites, %d filegroups}", len(c.sites), len(c.cfg.Filegroups))
}
