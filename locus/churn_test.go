package locus_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/locus"
)

// TestLongChurn runs the whole system through repeated partition /
// divergent-work / merge cycles with a mixed workload and verifies the
// single-system-image invariants at every convergence point:
// every non-conflicted file reads identically from every site, and the
// namespace is identical everywhere.
func TestLongChurn(t *testing.T) {
	c, err := locus.Simple(4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sess := map[locus.SiteID]*locus.Session{}
	for _, s := range c.Sites() {
		sess[s] = c.Site(s).Login("churn")
	}
	if err := sess[1].Mkdir("/work"); err != nil {
		t.Fatal(err)
	}
	c.Settle()

	splits := [][2][]locus.SiteID{
		{{1, 2}, {3, 4}},
		{{1, 3}, {2, 4}},
		{{1}, {2, 3, 4}},
		{{1, 2, 3}, {4}},
	}
	revision := map[string]string{}

	for cycle, split := range splits {
		c.Partition(split[0], split[1])

		// Each half does non-conflicting work: per-half file names.
		for half, group := range split {
			writer := sess[group[0]]
			for i := 0; i < 3; i++ {
				name := fmt.Sprintf("/work/c%d-h%d-f%d", cycle, half, i)
				content := fmt.Sprintf("cycle %d half %d item %d", cycle, half, i)
				if err := writer.WriteFile(name, []byte(content)); err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
				revision[name] = content
			}
			// And updates an older file it owns (same half pattern ->
			// never concurrent across halves).
			if cycle > 0 {
				name := fmt.Sprintf("/work/c%d-h%d-f0", cycle-1, half)
				if _, ok := revision[name]; ok {
					content := fmt.Sprintf("updated in cycle %d", cycle)
					if err := writer.WriteFile(name, []byte(content)); err != nil {
						// The file's storage sites may all be in the
						// other half: acceptable unavailability.
						if !errors.Is(err, locus.ErrNoCSS) && !errors.Is(err, locus.ErrNotFound) &&
							!errors.Is(err, locus.ErrNoStorageSite) && !errors.Is(err, locus.ErrStale) {
							t.Fatalf("cycle %d update %s: %v", cycle, name, err)
						}
					} else {
						revision[name] = content
					}
				}
			}
		}

		rep, err := c.Merge()
		if err != nil {
			t.Fatalf("cycle %d merge: %v", cycle, err)
		}
		if rep.ConflictsReported != 0 {
			t.Fatalf("cycle %d: unexpected conflicts: %+v", cycle, rep)
		}

		// Convergence check from every site.
		var refNames string
		for _, s := range c.Sites() {
			ents, err := sess[s].ReadDir("/work")
			if err != nil {
				t.Fatalf("cycle %d site %d readdir: %v", cycle, s, err)
			}
			names := ""
			for _, e := range ents {
				names += e.Name + ";"
			}
			if refNames == "" {
				refNames = names
			} else if names != refNames {
				t.Fatalf("cycle %d: namespace diverges at site %d:\n%s\nvs\n%s", cycle, s, names, refNames)
			}
		}
		for name, want := range revision {
			for _, s := range c.Sites() {
				got, err := sess[s].ReadFile(name)
				if err != nil {
					t.Fatalf("cycle %d site %d read %s: %v", cycle, s, name, err)
				}
				if string(got) != want {
					t.Fatalf("cycle %d site %d %s = %q, want %q", cycle, s, name, got, want)
				}
			}
		}
	}
}
