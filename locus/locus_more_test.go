package locus_test

import (
	"errors"
	"strings"
	"testing"

	"repro/locus"
)

func TestClusterSpecValidation(t *testing.T) {
	// No sites.
	if _, err := locus.NewCluster(locus.ClusterSpec{}); err == nil {
		t.Fatal("empty spec should fail")
	}
	// No root filegroup.
	_, err := locus.NewCluster(locus.ClusterSpec{
		Sites:      []locus.SiteSpec{{ID: 1}},
		Filegroups: []locus.FilegroupSpec{{ID: 1, MountPath: "/x", Replicas: []locus.SiteID{1}}},
	})
	if err == nil || !strings.Contains(err.Error(), "mounted at /") {
		t.Fatalf("err = %v", err)
	}
	// Duplicate filegroup ids.
	_, err = locus.NewCluster(locus.ClusterSpec{
		Sites: []locus.SiteSpec{{ID: 1}},
		Filegroups: []locus.FilegroupSpec{
			{ID: 1, MountPath: "/", Replicas: []locus.SiteID{1}},
			{ID: 1, MountPath: "/x", Replicas: []locus.SiteID{1}},
		},
	})
	if err == nil {
		t.Fatal("duplicate filegroup should fail")
	}
}

func TestSessionNCopiesInheritance(t *testing.T) {
	c, err := locus.Simple(4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Site(2).Login("u")
	s.SetNCopies(2)
	if err := s.WriteFile("/two", []byte("x")); err != nil {
		t.Fatal(err)
	}
	ino, err := s.Stat("/two")
	if err != nil {
		t.Fatal(err)
	}
	if len(ino.Sites) != 2 || ino.Sites[0] != 2 {
		t.Fatalf("Sites = %v, want local-first pair", ino.Sites)
	}
	// Reset: inherit the parent directory's factor (all 4).
	s.SetNCopies(0)
	if err := s.WriteFile("/four", []byte("x")); err != nil {
		t.Fatal(err)
	}
	ino, err = s.Stat("/four")
	if err != nil {
		t.Fatal(err)
	}
	if len(ino.Sites) != 4 {
		t.Fatalf("Sites = %v, want 4", ino.Sites)
	}
}

func TestErrorsAreExported(t *testing.T) {
	c, err := locus.Simple(1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Site(1).Login("u")
	if _, err := s.ReadFile("/missing"); !errors.Is(err, locus.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := s.WriteFile("/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/f", locus.TypeRegular); !errors.Is(err, locus.ErrExists) {
		t.Fatalf("err = %v", err)
	}
	f1, err := s.Open("/f", locus.Modify)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("/f", locus.Modify); !errors.Is(err, locus.ErrBusy) {
		t.Fatalf("err = %v", err)
	}
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMailBetweenUsers(t *testing.T) {
	c, err := locus.Simple(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	alice := c.Site(1).Login("alice")
	bob := c.Site(2).Login("bob")
	if err := alice.SendMail("bob", "lunch at noon?"); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	msgs, err := bob.ReadMail()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].From != "alice" || msgs[0].Body != "lunch at noon?" {
		t.Fatalf("mail = %+v", msgs)
	}
}

func TestHiddenContextOverride(t *testing.T) {
	c, err := locus.NewCluster(locus.ClusterSpec{
		Sites: []locus.SiteSpec{{ID: 1, MachineType: "vax"}},
		Filegroups: []locus.FilegroupSpec{
			{ID: 1, MountPath: "/", Replicas: []locus.SiteID{1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Site(1).Login("u")
	if err := c.Site(1).FS.MkHidden(s.Cred(), "/app", 0755); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/app@@/vax", []byte("for vax")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/app@@/experimental", []byte("for testers")); err != nil {
		t.Fatal(err)
	}
	// Default context: the site's machine type.
	d, err := s.ReadFile("/app")
	if err != nil || string(d) != "for vax" {
		t.Fatalf("%q %v", d, err)
	}
	// Per-process override, tried in order.
	s.SetHiddenContext("experimental", "vax")
	d, err = s.ReadFile("/app")
	if err != nil || string(d) != "for testers" {
		t.Fatalf("%q %v", d, err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	c, err := locus.Simple(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before := c.Stats()
	s := c.Site(1).Login("u")
	if err := s.WriteFile("/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	d := c.Stats().Sub(before)
	if d.Msgs == 0 || d.CPUUs == 0 || d.DiskUs == 0 {
		t.Fatalf("stats did not accumulate: %+v", d)
	}
}
