package locus_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/locus"

	"repro/internal/proc"
)

func TestQuickstartLifecycle(t *testing.T) {
	c, err := locus.Simple(3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	alice := c.Site(1).Login("alice")
	if err := alice.WriteFile("/hello", []byte("transparent!")); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	bob := c.Site(3).Login("bob")
	data, err := bob.ReadFile("/hello")
	if err != nil || string(data) != "transparent!" {
		t.Fatalf("read %q, %v", data, err)
	}
}

func TestFullPartitionMergeStory(t *testing.T) {
	// The paper's core scenario end to end: normal operation,
	// partition, divergent activity in both halves, dynamic merge,
	// automatic reconciliation.
	c, err := locus.Simple(4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s1 := c.Site(1).Login("alice")
	s3 := c.Site(3).Login("bob")

	if err := s1.Mkdir("/proj"); err != nil {
		t.Fatal(err)
	}
	if err := s1.WriteFile("/proj/shared", []byte("base")); err != nil {
		t.Fatal(err)
	}
	c.Settle()

	// Partition {1,2} / {3,4}; both halves keep working (§4.1).
	c.Partition([]locus.SiteID{1, 2}, []locus.SiteID{3, 4})
	if err := s1.WriteFile("/proj/a-side", []byte("from a")); err != nil {
		t.Fatal(err)
	}
	if err := s3.WriteFile("/proj/b-side", []byte("from b")); err != nil {
		t.Fatal(err)
	}
	// Conflicting update to the shared file.
	if err := s1.WriteFile("/proj/shared", []byte("a version")); err != nil {
		t.Fatal(err)
	}
	if err := s3.WriteFile("/proj/shared", []byte("b version")); err != nil {
		t.Fatal(err)
	}

	rep, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DirsMerged == 0 {
		t.Fatalf("report %+v: no directory merged", rep)
	}
	if rep.ConflictsReported != 1 {
		t.Fatalf("report %+v: want exactly the shared-file conflict", rep)
	}

	// Both sides' independent files visible everywhere.
	for _, site := range c.Sites() {
		sess := c.Site(site).Login("check")
		if d, err := sess.ReadFile("/proj/a-side"); err != nil || string(d) != "from a" {
			t.Fatalf("site %d a-side: %q %v", site, d, err)
		}
		if d, err := sess.ReadFile("/proj/b-side"); err != nil || string(d) != "from b" {
			t.Fatalf("site %d b-side: %q %v", site, d, err)
		}
	}
	// The conflicted file is blocked and reported by mail.
	if _, err := s1.ReadFile("/proj/shared"); !errors.Is(err, locus.ErrConflict) {
		t.Fatalf("conflicted read: %v", err)
	}
	msgs, err := s1.ReadMail()
	if err != nil || len(msgs) == 0 {
		t.Fatalf("conflict mail: %v %v", msgs, err)
	}

	// Resolve and verify.
	confs := c.Site(1).Recon.ListConflicts()
	if len(confs) != 1 {
		t.Fatalf("conflicts: %+v", confs)
	}
	if err := c.Site(1).Recon.ResolveKeep(confs[0].ID, 3); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	if d, err := s1.ReadFile("/proj/shared"); err != nil || string(d) != "b version" {
		t.Fatalf("after resolve: %q %v", d, err)
	}
}

func TestCrashRestartCycle(t *testing.T) {
	c, err := locus.Simple(3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s1 := c.Site(1).Login("u")
	if err := s1.WriteFile("/f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	c.Settle()

	c.Crash(3)
	if got := c.Site(1).Topo.Partition(); len(got) != 2 {
		t.Fatalf("partition after crash: %v", got)
	}
	// Work continues; site 3 misses it.
	if err := s1.WriteFile("/f", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restart(3); err != nil {
		t.Fatal(err)
	}
	if got := c.Site(1).Topo.Partition(); len(got) != 3 {
		t.Fatalf("partition after restart: %v", got)
	}
	d, err := c.Site(3).Login("u").ReadFile("/f")
	if err != nil || string(d) != "v2" {
		t.Fatalf("site 3 reads %q %v", d, err)
	}
}

func TestRemoteExecutionAndSignals(t *testing.T) {
	c, err := locus.NewCluster(locus.ClusterSpec{
		Sites: []locus.SiteSpec{
			{ID: 1, MachineType: "vax"},
			{ID: 2, MachineType: "pdp11"},
		},
		Filegroups: []locus.FilegroupSpec{{ID: 1, MountPath: "/", Replicas: []locus.SiteID{1, 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sess := c.Site(1).Login("u")
	if err := sess.Mkdir("/bin"); err != nil {
		t.Fatal(err)
	}
	if err := c.Site(1).FS.MkHidden(sess.Cred(), "/bin/svc", 0755); err != nil {
		t.Fatal(err)
	}
	if err := sess.WriteFile("/bin/svc@@/vax", []byte("go:svc\n")); err != nil {
		t.Fatal(err)
	}
	if err := sess.WriteFile("/bin/svc@@/pdp11", []byte("go:svc\n")); err != nil {
		t.Fatal(err)
	}
	c.Settle()

	started := make(chan proc.PID, 2)
	for _, id := range c.Sites() {
		site := c.Site(id)
		site.Proc.Register("svc", func(ctx *proc.Ctx) int {
			started <- ctx.Self.PID()
			<-ctx.Signals()
			return 7
		})
	}

	sess.SetExecSite(2)
	pid, err := sess.Run("/bin/svc")
	if err != nil {
		t.Fatal(err)
	}
	if pid.Site != 2 {
		t.Fatalf("ran at %v", pid)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("program did not start")
	}
	if err := sess.Signal(pid, proc.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if st := sess.Wait(pid); st.Code != 7 {
		t.Fatalf("status %+v", st)
	}
}

func TestTransactionsThroughSession(t *testing.T) {
	c, err := locus.Simple(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess := c.Site(1).Login("u")
	if err := sess.WriteFile("/acct/..", nil); err == nil {
		t.Fatal("expected bad name error")
	}
	if err := sess.Mkdir("/acct"); err != nil {
		t.Fatal(err)
	}
	if err := sess.WriteFile("/acct/a", []byte("100")); err != nil {
		t.Fatal(err)
	}
	if err := sess.WriteFile("/acct/b", []byte("0")); err != nil {
		t.Fatal(err)
	}

	tx := sess.Begin()
	if err := tx.WriteFile("/acct/a", []byte("60")); err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteFile("/acct/b", []byte("40")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	a, _ := c.Site(2).Login("u").ReadFile("/acct/a")
	b, _ := c.Site(2).Login("u").ReadFile("/acct/b")
	if string(a) != "60" || string(b) != "40" {
		t.Fatalf("a=%q b=%q", a, b)
	}
}

func TestHundredFilesAcrossSites(t *testing.T) {
	c, err := locus.Simple(5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sessions := make([]*locus.Session, 0, 5)
	for _, id := range c.Sites() {
		sessions = append(sessions, c.Site(id).Login("u"))
	}
	for i := 0; i < 100; i++ {
		s := sessions[i%len(sessions)]
		if err := s.WriteFile(fmt.Sprintf("/f%03d", i), []byte(fmt.Sprintf("content %d", i))); err != nil {
			t.Fatalf("file %d: %v", i, err)
		}
	}
	c.Settle()
	for i := 0; i < 100; i++ {
		s := sessions[(i+3)%len(sessions)]
		d, err := s.ReadFile(fmt.Sprintf("/f%03d", i))
		if err != nil || string(d) != fmt.Sprintf("content %d", i) {
			t.Fatalf("file %d read from other site: %q %v", i, d, err)
		}
	}
}
