package locus

import (
	"repro/internal/format"
	"repro/internal/fs"
	"repro/internal/proc"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Session is a logged-in user's handle on one site: the equivalent of
// a shell process, carrying the per-process inherited state (user,
// default replication factor, hidden-directory context) that LOCUS
// system calls consult.
type Session struct {
	site *Site
	cred *fs.Cred
	// shell is the session's root process (parent of Run children).
	shell *proc.Process
}

// Login opens a session for a user at this site. The hidden-directory
// context defaults to the site's machine type.
func (s *Site) Login(user string) *Session {
	cred := &fs.Cred{User: user, HiddenCtx: []string{s.Proc.MachineType()}}
	return &Session{site: s, cred: cred, shell: s.Proc.InitProcess(cred)}
}

// Site returns the session's site.
func (se *Session) Site() *Site { return se.site }

// Cred exposes the session credential (advanced use).
func (se *Session) Cred() *fs.Cred { return se.cred }

// Shell returns the session's root process.
func (se *Session) Shell() *proc.Process { return se.shell }

// SetNCopies sets the inherited default replication factor for files
// this session creates (§2.3.7's per-process number-of-copies
// variable). Zero restores "inherit from the parent directory".
func (se *Session) SetNCopies(n int) { se.cred.NCopies = n }

// SetHiddenContext replaces the session's hidden-directory context
// list.
func (se *Session) SetHiddenContext(ctx ...string) { se.cred.HiddenCtx = ctx }

// --- Filesystem calls (all fully location-transparent) ---

// Create creates a file open for modification.
func (se *Session) Create(path string, typ storage.FileType) (*fs.File, error) {
	return se.site.FS.Create(se.cred, path, typ, 0644)
}

// Open opens a file by pathname.
func (se *Session) Open(path string, mode fs.OpenMode) (*fs.File, error) {
	return se.site.FS.Open(se.cred, path, mode)
}

// WriteFile creates-or-replaces a file's content and commits it.
func (se *Session) WriteFile(path string, data []byte) error {
	f, err := se.site.FS.Open(se.cred, path, fs.ModeModify)
	if err != nil {
		f, err = se.site.FS.Create(se.cred, path, storage.TypeRegular, 0644)
		if err != nil {
			return err
		}
	}
	if err := f.WriteAll(data); err != nil {
		f.Close() //locus:vet-allow uncheckedcall abandoning after failure
		return err
	}
	return f.Close() // closing a file commits it (§2.3.6)
}

// ReadFile reads a file's full content.
func (se *Session) ReadFile(path string) ([]byte, error) {
	f, err := se.site.FS.Open(se.cred, path, fs.ModeRead)
	if err != nil {
		return nil, err
	}
	defer f.Close() //locus:vet-allow uncheckedcall read-only
	return f.ReadAll()
}

// Mkdir creates a directory.
func (se *Session) Mkdir(path string) error {
	return se.site.FS.Mkdir(se.cred, path, 0755)
}

// ReadDir lists a directory.
func (se *Session) ReadDir(path string) ([]format.DirEntry, error) {
	return se.site.FS.ReadDir(se.cred, path)
}

// Unlink removes a name (and the file when its last link goes).
func (se *Session) Unlink(path string) error {
	return se.site.FS.Unlink(se.cred, path)
}

// Rename moves a name within a filegroup.
func (se *Session) Rename(oldPath, newPath string) error {
	return se.site.FS.Rename(se.cred, oldPath, newPath)
}

// Link creates a hard link.
func (se *Session) Link(oldPath, newPath string) error {
	return se.site.FS.Link(se.cred, oldPath, newPath)
}

// Stat returns a file's inode snapshot.
func (se *Session) Stat(path string) (*storage.Inode, error) {
	return se.site.FS.Stat(se.cred, path)
}

// SetReplication changes a file's storage-site list.
func (se *Session) SetReplication(path string, sites ...SiteID) error {
	return se.site.FS.SetReplication(se.cred, path, sites)
}

// Mkfifo creates a named pipe.
func (se *Session) Mkfifo(path string) error {
	return se.site.FS.Mkfifo(se.cred, path, 0644)
}

// Mknod creates a device special file served by a driver at host
// (§2.4.2 transparent remote devices).
func (se *Session) Mknod(path string, host SiteID, devName string) error {
	return se.site.FS.Mknod(se.cred, path, host, devName, 0666)
}

// OpenDevice opens a (possibly remote) device named in the catalog.
func (se *Session) OpenDevice(path string) (*proc.DeviceHandle, error) {
	return se.site.Proc.OpenDevice(se.shell, path)
}

// --- Processes ---

// SetExecSite sets the advice list so subsequent Run calls execute at
// the given site (§3.1: "one can dynamically, even just before process
// invocation, select the execution site").
func (se *Session) SetExecSite(sites ...SiteID) { se.shell.SetAdvice(sites...) }

// Run starts a program (the run call of §3.1: fork+exec without the
// image copy). The load module at path is resolved through hidden
// directories, so heterogeneous sites transparently run their own
// module.
func (se *Session) Run(path string, args ...string) (proc.PID, error) {
	return se.site.Proc.Run(se.shell, path, args)
}

// Wait blocks until the process exits.
func (se *Session) Wait(pid proc.PID) proc.ExitStatus {
	return se.site.Proc.Wait(se.shell, pid)
}

// Signal sends a signal to any process in the network.
func (se *Session) Signal(pid proc.PID, sig proc.Signal) error {
	return se.site.Proc.Signal(pid, sig)
}

// OpenPipe opens a named pipe end.
func (se *Session) OpenPipe(path string, write bool) (*proc.PipeEnd, error) {
	return se.site.Proc.OpenPipe(se.shell, path, write)
}

// --- Transactions ---

// Begin starts a top-level nested transaction.
func (se *Session) Begin() *txn.Txn {
	return se.site.Txn.Begin(se.cred)
}

// --- Mail ---

// ReadMail returns the session user's live mail.
func (se *Session) ReadMail() ([]format.Message, error) {
	return se.site.Recon.ReadMail(se.cred.User)
}

// SendMail delivers a message to another user's mailbox.
func (se *Session) SendMail(to, body string) error {
	return se.site.Recon.DeliverMail(to, se.cred.User, body)
}
